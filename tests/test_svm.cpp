// Tests for the AMD SVM portability layer (§IX): VMCB model, exit-code
// translation, and seed transcoding.
#include <gtest/gtest.h>

#include "guest/workload.h"
#include "iris/manager.h"
#include "svm/transcode.h"

namespace iris::svm {
namespace {

TEST(Vmcb, ReadWriteAtApmOffsets) {
  Vmcb vmcb;
  vmcb.write(VmcbField::kExitCode, 0x72);
  vmcb.write(VmcbField::kRip, 0xFFF0);
  vmcb.write(VmcbField::kRax, 0x1234);
  EXPECT_EQ(vmcb.read(VmcbField::kExitCode), 0x72u);
  EXPECT_EQ(vmcb.read(VmcbField::kRip), 0xFFF0u);
  EXPECT_EQ(vmcb.read(VmcbField::kRax), 0x1234u);
  // EXITCODE sits at APM offset 0x70 in the raw block.
  EXPECT_EQ(vmcb.raw()[0x70], 0x72);
  vmcb.clear();
  EXPECT_EQ(vmcb.read(VmcbField::kExitCode), 0u);
}

TEST(Vmcb, NoAccessTypeChecksUnlikeVmcs) {
  // The VMCB is plain memory: the "read-only" discipline the VMCS
  // enforces in hardware does not exist on SVM. Writes to exit-info
  // fields simply succeed — a porting hazard the design notes.
  Vmcb vmcb;
  vmcb.write(VmcbField::kExitInfo1, 0xDEAD);  // VT-x: VMfail error 13
  EXPECT_EQ(vmcb.read(VmcbField::kExitInfo1), 0xDEADu);
}

TEST(ExitTranslation, CrAccessSplitsByDirectionAndRegister) {
  hv::CrAccessQual to_cr0;
  to_cr0.cr = 0;
  to_cr0.access_type = hv::CrAccessQual::kMovToCr;
  EXPECT_EQ(exit_code_from_vtx(vtx::ExitReason::kCrAccess, to_cr0.encode()),
            SvmExitCode::kCr0Write);
  hv::CrAccessQual from_cr3;
  from_cr3.cr = 3;
  from_cr3.access_type = hv::CrAccessQual::kMovFromCr;
  EXPECT_EQ(exit_code_from_vtx(vtx::ExitReason::kCrAccess, from_cr3.encode()),
            SvmExitCode::kCr3Read);
}

TEST(ExitTranslation, CommonReasonsMapBothWays) {
  const std::pair<vtx::ExitReason, SvmExitCode> pairs[] = {
      {vtx::ExitReason::kCpuid, SvmExitCode::kCpuid},
      {vtx::ExitReason::kHlt, SvmExitCode::kHlt},
      {vtx::ExitReason::kRdtsc, SvmExitCode::kRdtsc},
      {vtx::ExitReason::kVmcall, SvmExitCode::kVmmcall},
      {vtx::ExitReason::kIoInstruction, SvmExitCode::kIoio},
      {vtx::ExitReason::kExternalInterrupt, SvmExitCode::kIntr},
      {vtx::ExitReason::kInterruptWindow, SvmExitCode::kVintr},
      {vtx::ExitReason::kTripleFault, SvmExitCode::kShutdown},
      {vtx::ExitReason::kEptViolation, SvmExitCode::kNpf},
      {vtx::ExitReason::kWbinvd, SvmExitCode::kWbinvd},
  };
  for (const auto& [reason, code] : pairs) {
    EXPECT_EQ(exit_code_from_vtx(reason, 0), code) << vtx::to_string(reason);
    EXPECT_EQ(exit_reason_from_svm(code), reason) << to_string(code);
  }
}

TEST(ExitTranslation, NestedVmxHasNoAnalogue) {
  EXPECT_FALSE(exit_code_from_vtx(vtx::ExitReason::kVmxon, 0).has_value());
  EXPECT_FALSE(exit_code_from_vtx(vtx::ExitReason::kVmread, 0).has_value());
}

TEST(ExitTranslation, EntryFailureMapsToVmrunInvalid) {
  EXPECT_EQ(exit_code_from_vtx(vtx::ExitReason::kInvalidGuestState, 0),
            SvmExitCode::kInvalid);
  EXPECT_EQ(exit_reason_from_svm(SvmExitCode::kInvalid),
            vtx::ExitReason::kInvalidGuestState);
}

TEST(FieldTranslation, GuestStateMapsControlStateDoesNot) {
  EXPECT_EQ(vmcb_field_from_vmcs(vtx::VmcsField::kGuestCr0), VmcbField::kCr0);
  EXPECT_EQ(vmcb_field_from_vmcs(vtx::VmcsField::kGuestRip), VmcbField::kRip);
  EXPECT_EQ(vmcb_field_from_vmcs(vtx::VmcsField::kExitQualification),
            VmcbField::kExitInfo1);
  EXPECT_EQ(vmcb_field_from_vmcs(vtx::VmcsField::kTscOffset),
            VmcbField::kTscOffset);
  EXPECT_EQ(vmcb_field_from_vmcs(vtx::VmcsField::kEptPointer), VmcbField::kNCr3);
  // VT-x-only machinery.
  EXPECT_FALSE(vmcb_field_from_vmcs(vtx::VmcsField::kCr0ReadShadow));
  EXPECT_FALSE(vmcb_field_from_vmcs(vtx::VmcsField::kCr0GuestHostMask));
  EXPECT_FALSE(vmcb_field_from_vmcs(vtx::VmcsField::kVmcsLinkPointer));
  EXPECT_FALSE(vmcb_field_from_vmcs(vtx::VmcsField::kPinBasedVmExecControl));
}

TEST(Transcode, MovesRaxIntoVmcb) {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kCpuid;
  for (int i = 0; i < vcpu::kNumGprs; ++i) {
    seed.items.push_back(SeedItem{SeedItemKind::kGpr, static_cast<std::uint8_t>(i),
                                  0x100ULL + static_cast<std::uint64_t>(i)});
  }
  const auto svm = transcode(seed);
  ASSERT_TRUE(svm.has_value());
  EXPECT_EQ(svm->exit_code, SvmExitCode::kCpuid);
  EXPECT_EQ(svm->vmcb.read(VmcbField::kRax), 0x100u);   // RAX -> VMCB
  EXPECT_EQ(svm->gprs[1], 0x101u);                      // RCX stays in the block
}

TEST(Transcode, ReportsUntranslatableFields) {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kCrAccess;
  seed.items.push_back(SeedItem{
      SeedItemKind::kVmcsField,
      *vtx::compact_index(vtx::VmcsField::kCr0ReadShadow), 0x31});
  seed.items.push_back(SeedItem{
      SeedItemKind::kVmcsField, *vtx::compact_index(vtx::VmcsField::kGuestCr0),
      0x31});
  TranscodeStats stats;
  const auto svm = transcode(seed, &stats);
  ASSERT_TRUE(svm.has_value());
  EXPECT_EQ(stats.vmcs_fields, 2u);
  EXPECT_EQ(stats.translated, 1u);
  EXPECT_EQ(stats.untranslated, 1u);
  ASSERT_EQ(svm->untranslated.size(), 1u);
  EXPECT_EQ(svm->untranslated[0], vtx::VmcsField::kCr0ReadShadow);
  EXPECT_EQ(svm->vmcb.read(VmcbField::kCr0), 0x31u);
}

TEST(Transcode, MsrDirectionFoldsIntoExitInfo1) {
  VmSeed rd, wr;
  rd.reason = vtx::ExitReason::kMsrRead;
  wr.reason = vtx::ExitReason::kMsrWrite;
  EXPECT_EQ(transcode(rd)->vmcb.read(VmcbField::kExitInfo1), 0u);
  EXPECT_EQ(transcode(wr)->vmcb.read(VmcbField::kExitInfo1), 1u);
}

TEST(Transcode, MemoryChunksPassThrough) {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kLdtrTrAccess;
  seed.memory.push_back(MemChunk{0x2000, {0x0F, 0x00, 0xD8}});
  const auto svm = transcode(seed);
  ASSERT_TRUE(svm.has_value());
  ASSERT_EQ(svm->memory.size(), 1u);
  EXPECT_EQ(svm->memory[0].gpa, 0x2000u);
}

TEST(Transcode, RecordedBehaviorsAreLargelyPortable) {
  hv::Hypervisor hv(61, 0.0);
  Manager manager(hv);
  for (const auto w : {guest::Workload::kOsBoot, guest::Workload::kCpuBound}) {
    const auto& behavior = manager.record_workload(w, 400, 17);
    const auto stats = transcode_coverage(behavior);
    ASSERT_GT(stats.vmcs_fields, 0u);
    const double portable = static_cast<double>(stats.translated) /
                            static_cast<double>(stats.vmcs_fields);
    // The exit collateral + guest state dominate seeds; only VT-x
    // control plumbing is untranslatable.
    EXPECT_GT(portable, 0.6) << guest::to_string(w);
  }
}

}  // namespace
}  // namespace iris::svm
