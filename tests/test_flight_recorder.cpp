// Flight-recorder tests: breadcrumb ring wrap and torn-slot decode,
// crumb harvest from a SIGKILLed child with no child-side flush, phase
// span pairing/nesting, campaign byte-identity with the recorder armed
// (the recorder must never perturb the determinism contract), forensic
// JSON round trips including the crumb-tail truncation and corrupt-file
// error paths, and fleet-monitor folding of forensic records.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/forensics.h"
#include "campaign/monitor.h"
#include "fuzz/campaign.h"
#include "support/flight_recorder.h"

namespace iris {
namespace {

namespace fs = std::filesystem;
using campaign::ForensicRecord;
using fuzz::CampaignConfig;
using fuzz::CampaignRunner;
using guest::Workload;
using support::Crumb;
using support::CrumbType;
using support::FlightRecorder;
using support::Phase;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_text(const fs::path& path, const std::string& text) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

CampaignConfig small_config(std::size_t workers) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

CampaignConfig sandbox_config(std::size_t workers) {
  CampaignConfig config = small_config(workers);
  config.sandbox_cells = true;
  config.cell_retries = 1;
  config.retry_base_backoff_ms = 0.1;
  return config;
}

std::vector<fuzz::TestCaseSpec> small_grid(std::size_t mutants = 40) {
  return fuzz::make_table1_grid({Workload::kCpuBound}, mutants, 7);
}

// --- Ring decode ---

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsOverwritten) {
  FlightRecorder recorder(/*capacity=*/8, /*log_capacity=*/4);
  ASSERT_EQ(recorder.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.append(CrumbType::kMutant, i, i * 2);
  }
  const auto harvest = recorder.harvest();
  EXPECT_EQ(harvest.total, 20u);
  EXPECT_EQ(harvest.overwritten, 12u);
  EXPECT_EQ(harvest.torn, 0u);
  ASSERT_EQ(harvest.crumbs.size(), 8u);
  for (std::size_t i = 0; i < harvest.crumbs.size(); ++i) {
    const Crumb& c = harvest.crumbs[i];
    EXPECT_EQ(c.ordinal, 12u + i);
    EXPECT_EQ(c.type, CrumbType::kMutant);
    EXPECT_EQ(c.a, 12u + i);
    EXPECT_EQ(c.b, (12u + i) * 2);
  }
}

TEST(FlightRecorder, TornSlotIsSkippedAndCounted) {
  FlightRecorder recorder(/*capacity=*/8, /*log_capacity=*/4);
  for (std::uint64_t i = 0; i < 8; ++i) {
    recorder.append(CrumbType::kVmExit, 0x1e, 0x1000 + i);
  }
  // A writer killed between the zero store and the publish store of
  // ordinal 3's slot: the stamp is 0 but the cursor already counted it.
  recorder.tear_slot_for_test(3);
  const auto harvest = recorder.harvest();
  EXPECT_EQ(harvest.total, 8u);
  EXPECT_EQ(harvest.overwritten, 0u);
  EXPECT_EQ(harvest.torn, 1u);
  ASSERT_EQ(harvest.crumbs.size(), 7u);
  for (const Crumb& c : harvest.crumbs) EXPECT_NE(c.ordinal, 3u);
}

TEST(FlightRecorder, ResetClearsTheRingForReuse) {
  FlightRecorder recorder(/*capacity=*/8, /*log_capacity=*/4);
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.append(CrumbType::kMutant, i, 0);
  }
  recorder.append_log("stale line", 10);
  recorder.reset();
  const auto empty = recorder.harvest();
  EXPECT_EQ(empty.total, 0u);
  EXPECT_TRUE(empty.crumbs.empty());
  EXPECT_TRUE(empty.log_tail.empty());
  recorder.append(CrumbType::kSnapshotRestore, 5, 0);
  const auto reused = recorder.harvest();
  EXPECT_EQ(reused.total, 1u);
  ASSERT_EQ(reused.crumbs.size(), 1u);
  EXPECT_EQ(reused.crumbs[0].ordinal, 0u);
}

TEST(FlightRecorder, LogTailWrapsAndTruncatesLongLines) {
  FlightRecorder recorder(/*capacity=*/8, /*log_capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    const std::string line = "line " + std::to_string(i);
    recorder.append_log(line.c_str(), line.size());
  }
  const std::string huge(200, 'x');
  recorder.append_log(huge.c_str(), huge.size());
  const auto harvest = recorder.harvest();
  // Newest 4 survive: lines 3..5 plus the truncated giant.
  ASSERT_EQ(harvest.log_tail.size(), 4u);
  EXPECT_EQ(harvest.log_tail[0], "line 3");
  EXPECT_EQ(harvest.log_tail[2], "line 5");
  EXPECT_EQ(harvest.log_tail[3],
            std::string(FlightRecorder::kLogLineBytes - 1, 'x'));
}

// --- Phase spans ---

TEST(FlightRecorder, PhaseSpansNestAndStayOpenAtFault) {
  FlightRecorder recorder;
  recorder.arm();
  support::span_begin(Phase::kMutate);
  support::span_begin(Phase::kReplay);
  support::span_end(Phase::kReplay);
  // Same-phase nesting pairs LIFO: the inner reset closes, the outer
  // stays open, like a fault in the middle of a nested reset would
  // leave it.
  support::span_begin(Phase::kReset);
  support::span_begin(Phase::kReset);
  support::span_end(Phase::kReset);
  recorder.disarm();

  const auto harvest = recorder.harvest();
  ASSERT_EQ(harvest.spans.size(), 4u);
  EXPECT_EQ(harvest.spans[0].phase, Phase::kMutate);
  EXPECT_FALSE(harvest.spans[0].closed);
  EXPECT_EQ(harvest.spans[1].phase, Phase::kReplay);
  EXPECT_TRUE(harvest.spans[1].closed);
  EXPECT_GE(harvest.spans[1].end_us, harvest.spans[1].begin_us);
  EXPECT_EQ(harvest.spans[2].phase, Phase::kReset);
  EXPECT_FALSE(harvest.spans[2].closed);  // outer, interrupted
  EXPECT_EQ(harvest.spans[3].phase, Phase::kReset);
  EXPECT_TRUE(harvest.spans[3].closed);  // inner, paired LIFO
}

TEST(FlightRecorder, CrumbHelpersAreInertWhileDisarmed) {
  FlightRecorder recorder;
  support::crumb_vm_exit(0x1e, 0x401000);
  support::crumb_mutant(7);
  { support::FlightSpan span(Phase::kMutate); }
  EXPECT_EQ(recorder.harvest().total, 0u);
  recorder.arm();
  support::crumb_vm_exit(0x1e, 0x401000);
  { support::FlightSpan span(Phase::kMutate); }
  recorder.disarm();
  EXPECT_EQ(recorder.harvest().total, 3u);
}

// --- Crash-surviving harvest ---

TEST(FlightRecorder, ParentHarvestsCrumbsFromSigkilledChild) {
  FlightRecorder recorder(/*capacity=*/64, /*log_capacity=*/4);
  if (!recorder.shared()) {
    GTEST_SKIP() << "mmap degraded to heap memory; crumbs cannot cross fork";
  }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // The child writes its breadcrumbs and then parks; it never
    // flushes, never exits cleanly — the parent SIGKILLs it.
    ::close(fds[0]);
    recorder.arm();
    support::span_begin(Phase::kMutate);
    support::crumb_mutant(41);
    support::crumb_vm_exit(0x1e, 0x401337);
    support::crumb_vmcs_write(0x6800, 0xdeadbeef);
    support::flight_log_line("guest wedged", 12);
    char byte = 'r';
    (void)!::write(fds[1], &byte, 1);
    for (;;) ::pause();
  }
  ::close(fds[1]);
  char byte = 0;
  ASSERT_EQ(::read(fds[0], &byte, 1), 1);
  ::close(fds[0]);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  const auto harvest = recorder.harvest();
  EXPECT_EQ(harvest.total, 4u);
  EXPECT_EQ(harvest.torn, 0u);
  ASSERT_EQ(harvest.crumbs.size(), 4u);
  EXPECT_EQ(harvest.crumbs[1].type, CrumbType::kMutant);
  EXPECT_EQ(harvest.crumbs[1].a, 41u);
  EXPECT_EQ(harvest.crumbs[2].type, CrumbType::kVmExit);
  EXPECT_EQ(harvest.crumbs[2].b, 0x401337u);
  EXPECT_EQ(harvest.crumbs[3].type, CrumbType::kVmcsWrite);
  EXPECT_EQ(harvest.crumbs[3].a, 0x6800u);
  ASSERT_EQ(harvest.spans.size(), 1u);
  EXPECT_EQ(harvest.spans[0].phase, Phase::kMutate);
  EXPECT_FALSE(harvest.spans[0].closed);
  ASSERT_EQ(harvest.log_tail.size(), 1u);
  EXPECT_EQ(harvest.log_tail[0], "guest wedged");
}

// --- Determinism ---

TEST(FlightRecorder, ArmedCampaignIsByteIdenticalToDarkAcrossModes) {
  const auto grid = small_grid();
  const auto reference = CampaignRunner(small_config(1)).run(grid);
  ASSERT_TRUE(reference.complete);
  const auto expected = campaign::canonical_result_bytes(reference);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const bool sandbox : {false, true}) {
      CampaignConfig config =
          sandbox ? sandbox_config(workers) : small_config(workers);
      config.flight_recorder = true;
      const auto result = CampaignRunner(config).run(grid);
      ASSERT_TRUE(result.complete)
          << "workers=" << workers << " sandbox=" << sandbox;
      EXPECT_EQ(campaign::canonical_result_bytes(result), expected)
          << "workers=" << workers << " sandbox=" << sandbox;
    }
  }
}

// --- Forensic records ---

ForensicRecord sample_record() {
  ForensicRecord record;
  record.cell = 11;
  record.attempt = 3;
  record.shard = "2-of-4";
  record.fault = "cell killed by signal 9";
  record.written_unix = 1700000000;
  record.harvest.total = 300;
  record.harvest.overwritten = 36;
  record.harvest.torn = 1;
  record.harvest.crumbs = {
      {263, CrumbType::kMutant, 12, 0},
      // Full-width values must survive the JSON round trip bit-exact.
      {264, CrumbType::kVmExit, 0x1e, 0xffffffffffffff01ULL},
      {265, CrumbType::kVmcsWrite, 0x6800, 0x8000000000000000ULL},
  };
  record.harvest.spans = {
      {Phase::kReplay, 100, 250, true},
      {Phase::kMutate, 260, 0, false},
  };
  record.harvest.log_tail = {"log line \"quoted\"", "plain line"};
  return record;
}

TEST(Forensics, FileNameSchemeRoundTrips) {
  EXPECT_EQ(campaign::forensic_file_name(4), "forensics-4.json");
  EXPECT_TRUE(campaign::is_forensic_file_name("forensics-4.json"));
  EXPECT_TRUE(campaign::is_forensic_file_name("forensics-1234.json"));
  EXPECT_FALSE(campaign::is_forensic_file_name("status-0.json"));
  EXPECT_FALSE(campaign::is_forensic_file_name("forensics-4.tmp"));
}

TEST(Forensics, RecordRoundTripsThroughJson) {
  const auto dir = scratch_dir("forensics-roundtrip");
  const ForensicRecord record = sample_record();
  ASSERT_TRUE(campaign::write_forensics(dir.string(), record).ok());

  auto read = campaign::read_forensics(
      (dir / campaign::forensic_file_name(record.cell)).string());
  ASSERT_TRUE(read.ok()) << read.error().message;
  const ForensicRecord& got = read.value();
  EXPECT_EQ(got.cell, 11u);
  EXPECT_EQ(got.attempt, 3u);
  EXPECT_EQ(got.shard, "2-of-4");
  EXPECT_EQ(got.fault, "cell killed by signal 9");
  EXPECT_EQ(got.written_unix, 1700000000u);
  EXPECT_EQ(got.harvest.total, 300u);
  EXPECT_EQ(got.harvest.overwritten, 36u);
  EXPECT_EQ(got.harvest.torn, 1u);
  ASSERT_EQ(got.harvest.crumbs.size(), 3u);
  EXPECT_EQ(got.harvest.crumbs[1].ordinal, 264u);
  EXPECT_EQ(got.harvest.crumbs[1].type, CrumbType::kVmExit);
  EXPECT_EQ(got.harvest.crumbs[1].b, 0xffffffffffffff01ULL);
  EXPECT_EQ(got.harvest.crumbs[2].b, 0x8000000000000000ULL);
  ASSERT_EQ(got.harvest.spans.size(), 2u);
  EXPECT_EQ(got.harvest.spans[0].phase, Phase::kReplay);
  EXPECT_TRUE(got.harvest.spans[0].closed);
  EXPECT_EQ(got.harvest.spans[0].end_us, 250u);
  EXPECT_EQ(got.harvest.spans[1].phase, Phase::kMutate);
  EXPECT_FALSE(got.harvest.spans[1].closed);
  ASSERT_EQ(got.harvest.log_tail.size(), 2u);
  EXPECT_EQ(got.harvest.log_tail[0], "log line \"quoted\"");
}

TEST(Forensics, PersistedCrumbsAreCappedToTheNewestTail) {
  ForensicRecord record = sample_record();
  record.harvest.crumbs.clear();
  for (std::uint64_t i = 0; i < campaign::kForensicCrumbTail + 6; ++i) {
    record.harvest.crumbs.push_back({i, CrumbType::kMutant, i, 0});
  }
  auto parsed = campaign::parse_forensics(campaign::render_forensics(record));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_EQ(parsed.value().harvest.crumbs.size(), campaign::kForensicCrumbTail);
  // The newest tail survives; the 6 oldest are dropped from the file.
  EXPECT_EQ(parsed.value().harvest.crumbs.front().ordinal, 6u);
  EXPECT_EQ(parsed.value().harvest.crumbs.back().ordinal,
            campaign::kForensicCrumbTail + 5);
  EXPECT_EQ(parsed.value().harvest.total, 300u);
}

TEST(Forensics, CorruptOrTruncatedFilesAreCleanErrors) {
  const auto dir = scratch_dir("forensics-corrupt");
  const std::string rendered = campaign::render_forensics(sample_record());
  write_text(dir / "forensics-1.json", rendered.substr(0, rendered.size() / 2));
  write_text(dir / "forensics-2.json", "not json at all");
  write_text(dir / "forensics-3.json", "{\"forensics_version\": 2}");

  auto truncated = campaign::read_forensics((dir / "forensics-1.json").string());
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code, 101);
  auto garbage = campaign::read_forensics((dir / "forensics-2.json").string());
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.error().code, 101);
  auto future = campaign::read_forensics((dir / "forensics-3.json").string());
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.error().code, 102);
  auto missing = campaign::read_forensics((dir / "forensics-4.json").string());
  EXPECT_FALSE(missing.ok());
}

// --- Fleet-monitor folding ---

TEST(Forensics, FleetMonitorFoldsForensicRecords) {
  const auto dir = scratch_dir("forensics-fleet");
  ForensicRecord older = sample_record();
  older.cell = 3;
  older.fault = "cell killed by signal 9";
  older.written_unix = 100;
  ASSERT_TRUE(campaign::write_forensics(dir.string(), older).ok());
  ForensicRecord newer = sample_record();
  newer.cell = 5;
  newer.fault = "harness overran the cell deadline";
  newer.written_unix = 200;
  ASSERT_TRUE(campaign::write_forensics(dir.string(), newer).ok());
  // A torn forensic file is skipped by the monitor, not counted.
  write_text(dir / "forensics-9.json", "{ torn");

  auto fleet = campaign::aggregate_fleet(dir.string(), 15.0,
                                         campaign::wall_clock_unix(), 8);
  ASSERT_TRUE(fleet.ok()) << fleet.error().message;
  EXPECT_EQ(fleet.value().forensics, 2u);
  EXPECT_EQ(fleet.value().last_fault_cell, 5u);
  EXPECT_EQ(fleet.value().last_fault_unix, 200u);
  EXPECT_EQ(fleet.value().last_fault, "harness overran the cell deadline");

  const std::string json = campaign::render_fleet_json(fleet.value());
  EXPECT_NE(json.find("\"forensics\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"last_fault_cell\": 5"), std::string::npos);
}

}  // namespace
}  // namespace iris
