// Pipeline-level tests for the hypervisor: launch sequence, the exit ->
// handler -> entry flow, instrumentation seams, hang watchdog, guest
// memory accessors, and the async-noise model.
#include <gtest/gtest.h>

#include "guest/guest_ops.h"
#include "hv/hypervisor.h"
#include "vtx/entry_checks.h"

namespace iris::hv {
namespace {

using guest::make_cpuid;
using guest::make_rdtsc;
using vtx::ExitReason;
using vtx::VmcsField;

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : hv_(1, 0.0) {
    dom_ = &hv_.create_domain(DomainRole::kTest);
    EXPECT_TRUE(hv_.launch(*dom_));
    vcpu_ = &dom_->vcpu();
  }

  Hypervisor hv_;
  Domain* dom_ = nullptr;
  HvVcpu* vcpu_ = nullptr;
};

TEST_F(HypervisorTest, Dom0ExistsImplicitly) {
  ASSERT_NE(hv_.domain(0), nullptr);
  EXPECT_EQ(hv_.domain(0)->role(), DomainRole::kControl);
}

TEST_F(HypervisorTest, LaunchPutsVmcsInLaunchedState) {
  EXPECT_EQ(vcpu_->vmcs.launch_state(), vtx::VmcsLaunchState::kActiveCurrentLaunched);
  EXPECT_TRUE(vcpu_->in_guest);
  EXPECT_EQ(vcpu_->mode_cache, vcpu::CpuMode::kMode1);  // real mode at reset
}

TEST_F(HypervisorTest, ProcessExitRoundTrip) {
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_cpuid(*vcpu_, 0));
  EXPECT_TRUE(outcome.entered);
  EXPECT_EQ(outcome.failure, FailureKind::kNone);
  EXPECT_EQ(outcome.dispatched_reason, ExitReason::kCpuid);
  EXPECT_GT(outcome.coverage.loc, 0u);
  EXPECT_GT(outcome.cycles, 0u);
  EXPECT_GT(outcome.vmreads, 0u);
  EXPECT_TRUE(vcpu_->in_guest);
}

TEST_F(HypervisorTest, GprsRoundTripThroughHypervisorStructs) {
  vcpu_->regs.write(vcpu::Gpr::kR9, 0x1234);
  hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  // R9 was saved to the hypervisor block and restored at entry.
  EXPECT_EQ(vcpu_->regs.read(vcpu::Gpr::kR9), 0x1234u);
}

TEST_F(HypervisorTest, VmreadHookObservesDispatch) {
  std::vector<VmcsField> reads;
  hv_.hooks().on_vmread = [&reads](VmcsField f, std::uint64_t) {
    reads.push_back(f);
  };
  hv_.process_exit(*dom_, *vcpu_, make_cpuid(*vcpu_, 0));
  // The dispatcher's first read is the exit reason.
  ASSERT_FALSE(reads.empty());
  EXPECT_EQ(reads.front(), VmcsField::kVmExitReason);
}

TEST_F(HypervisorTest, VmreadOverrideRedirectsDispatch) {
  // Interposing the exit reason makes the dispatcher run a different
  // handler — the core of IRIS replay (§V-B).
  hv_.hooks().vmread_override = [](VmcsField f,
                                   std::uint64_t v) -> std::optional<std::uint64_t> {
    if (f == VmcsField::kVmExitReason) {
      return static_cast<std::uint64_t>(ExitReason::kRdtsc);
    }
    return v;
  };
  PendingExit exit;
  exit.reason = ExitReason::kPreemptionTimer;
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, exit);
  EXPECT_EQ(outcome.dispatched_reason, ExitReason::kRdtsc);
}

TEST_F(HypervisorTest, VmwriteHookSeesHandlerWrites) {
  std::vector<std::pair<VmcsField, std::uint64_t>> writes;
  hv_.hooks().on_vmwrite = [&writes](VmcsField f, std::uint64_t v) {
    writes.emplace_back(f, v);
  };
  hv_.process_exit(*dom_, *vcpu_, make_cpuid(*vcpu_, 0));
  // advance_rip writes GUEST_RIP.
  const bool wrote_rip =
      std::any_of(writes.begin(), writes.end(),
                  [](const auto& w) { return w.first == VmcsField::kGuestRip; });
  EXPECT_TRUE(wrote_rip);
}

TEST_F(HypervisorTest, ExitStartHookRunsBeforeDispatch) {
  bool start_before_read = false;
  bool started = false;
  hv_.hooks().on_exit_start = [&started](HvVcpu&) { started = true; };
  hv_.hooks().on_vmread = [&](VmcsField, std::uint64_t) {
    if (!start_before_read) start_before_read = started;
  };
  hv_.process_exit(*dom_, *vcpu_, make_cpuid(*vcpu_, 0));
  EXPECT_TRUE(start_before_read);
}

TEST_F(HypervisorTest, CyclesIncludeFixedRootOverhead) {
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  EXPECT_GE(outcome.cycles, hv_.costs().root_fixed_overhead);
  // And the bare round trip lands near the calibrated ideal target.
  EXPECT_LT(outcome.cycles, 2 * hv_.costs().preemption_round_trip);
}

TEST_F(HypervisorTest, DeadDomainRejectsFurtherExits) {
  hv_.failures().vm_crash(dom_->id(), 0, "test kill");
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
  EXPECT_FALSE(outcome.entered);
}

TEST_F(HypervisorTest, DownedHostRejectsEverything) {
  hv_.failures().hypervisor_crash(0, "test panic");
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  EXPECT_EQ(outcome.failure, FailureKind::kHypervisorCrash);
}

TEST_F(HypervisorTest, CorruptedGuestStateFailsEntry) {
  // The handler path leaves RFLAGS bit 1 cleared -> SDM 26.3 rejects the
  // entry and the domain is crashed (the fuzzer's VM-crash source).
  vcpu_->regs.rflags = 0;
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
  EXPECT_NE(outcome.failure_reason.find("RFLAGS"), std::string::npos);
}

TEST_F(HypervisorTest, NoEntryLoopTripsHangWatchdog) {
  hv_.set_hang_threshold(16);
  PendingExit exit;
  exit.reason = ExitReason::kRdtsc;
  HandleOutcome last;
  for (int i = 0; i < 16; ++i) {
    last = hv_.process_exit_no_entry(*dom_, *vcpu_, exit);
  }
  EXPECT_EQ(last.failure, FailureKind::kHypervisorHang);
  EXPECT_TRUE(hv_.failures().host_is_down());
  EXPECT_TRUE(hv_.log().contains("stuck in VMX root"));
}

TEST_F(HypervisorTest, SuccessfulEntryResetsHangStreak) {
  hv_.set_hang_threshold(8);
  PendingExit exit;
  exit.reason = ExitReason::kRdtsc;
  for (int i = 0; i < 6; ++i) hv_.process_exit_no_entry(*dom_, *vcpu_, exit);
  hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));  // real entry
  EXPECT_EQ(vcpu_->root_mode_streak, 0u);
  for (int i = 0; i < 6; ++i) {
    const auto o = hv_.process_exit_no_entry(*dom_, *vcpu_, exit);
    EXPECT_EQ(o.failure, FailureKind::kNone) << i;
  }
}

TEST_F(HypervisorTest, AsyncNoisePerturbsCoverage) {
  Hypervisor noisy(/*noise_seed=*/7, /*async_noise_prob=*/1.0);
  Domain& dom = noisy.create_domain(DomainRole::kTest);
  ASSERT_TRUE(noisy.launch(dom));
  const auto outcome = noisy.process_exit(dom, dom.vcpu(), make_rdtsc(dom.vcpu()));
  // With noise forced on, intr.c blocks from the async event appear.
  EXPECT_GT(outcome.coverage.loc_in(noisy.coverage(), Component::kIntr), 0u);
}

TEST_F(HypervisorTest, CopyToFromGuestRoundTrip) {
  const std::array<std::uint8_t, 4> data = {9, 8, 7, 6};
  ASSERT_TRUE(hv_.copy_to_guest(*dom_, 0x5000, data));
  std::array<std::uint8_t, 4> back{};
  ASSERT_TRUE(hv_.copy_from_guest(*dom_, 0x5000, back));
  EXPECT_EQ(back, data);
}

TEST_F(HypervisorTest, DomainSnapshotRestoreRoundTrip) {
  vcpu_->regs.write(vcpu::Gpr::kRax, 0x42);
  hv_.copy_to_guest(*dom_, 0x1000, std::array<std::uint8_t, 1>{0xAA});
  hv_.process_exit(*dom_, *vcpu_, make_cpuid(*vcpu_, 1));  // mutates RAX etc.
  const auto snap = dom_->snapshot();

  hv_.process_exit(*dom_, *vcpu_, make_cpuid(*vcpu_, 0));
  hv_.copy_to_guest(*dom_, 0x1000, std::array<std::uint8_t, 1>{0xBB});
  dom_->restore(snap);

  std::array<std::uint8_t, 1> byte{};
  hv_.copy_from_guest(*dom_, 0x1000, byte);
  EXPECT_EQ(byte[0], 0xAA);
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestRip),
            snap.vmcs_fields.at(*vtx::compact_index(VmcsField::kGuestRip)));
}

TEST_F(HypervisorTest, InterruptInjectionAtEntry) {
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  dom_->irq().assert_vector(0x31, hv_.coverage());
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(outcome.injected_vector.value_or(0), 0x31);
  // The injection field is consumed by the entry.
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kVmEntryIntrInfoField), 0u);
}

TEST_F(HypervisorTest, BlockedInterruptArmsWindowExiting) {
  vcpu_->regs.rflags &= ~vtx::kRflagsIf;  // uninterruptible
  dom_->irq().assert_vector(0x31, hv_.coverage());
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, make_rdtsc(*vcpu_));
  ASSERT_TRUE(outcome.entered);
  EXPECT_FALSE(outcome.injected_vector.has_value());
  EXPECT_TRUE(vcpu_->vmcs.hw_read(VmcsField::kCpuBasedVmExecControl) & (1ULL << 2));
}

TEST_F(HypervisorTest, EntryFailureReasonCarriesFlag) {
  PendingExit exit;
  exit.reason = ExitReason::kCpuid;
  // Corrupt guest state mid-flight via the exit-start seam, as a
  // VMCS-mutating fuzzer would.
  hv_.hooks().on_exit_start = [](HvVcpu& v) {
    v.vmcs.hw_write(VmcsField::kVmcsLinkPointer, 0x1234);
  };
  const auto outcome = hv_.process_exit(*dom_, *vcpu_, exit);
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
  EXPECT_NE(outcome.failure_reason.find("link pointer"), std::string::npos);
}

}  // namespace
}  // namespace iris::hv
