// Property-based tests: parameterized sweeps over seeds, workloads and
// field sets asserting the framework's invariants.
#include <gtest/gtest.h>

#include "fuzz/mutator.h"
#include "guest/workload.h"
#include "iris/analysis.h"
#include "iris/manager.h"
#include "vtx/entry_checks.h"

namespace iris {
namespace {

using guest::Workload;

// --- Property: every modeled VMCS field honors its access type. ---

class VmcsFieldProperty : public ::testing::TestWithParam<vtx::VmcsField> {};

TEST_P(VmcsFieldProperty, VmwriteHonorsAccessType) {
  vtx::Vmcs vmcs;
  const auto field = GetParam();
  const auto outcome = vmcs.vmwrite(field, ~0ULL);
  EXPECT_EQ(outcome.succeeded(), !vtx::is_read_only(field));
}

TEST_P(VmcsFieldProperty, HwReadNeverExceedsWidthMask) {
  vtx::Vmcs vmcs;
  const auto field = GetParam();
  vmcs.hw_write(field, ~0ULL);
  EXPECT_EQ(vmcs.hw_read(field) & ~vtx::width_mask(field), 0u);
}

TEST_P(VmcsFieldProperty, CompactEncodingFitsSeedByte) {
  const auto idx = vtx::compact_index(GetParam());
  ASSERT_TRUE(idx.has_value());
  EXPECT_LT(*idx, vtx::kNumVmcsFields);
}

INSTANTIATE_TEST_SUITE_P(AllFields, VmcsFieldProperty,
                         ::testing::ValuesIn(vtx::all_fields().begin(),
                                             vtx::all_fields().end()));

// --- Property: recorded behaviors replay loss-free for any workload. ---

class WorkloadProperty : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadProperty, RecordedSeedsAreWellFormed) {
  hv::Hypervisor hv(3, 0.0);
  Manager manager(hv);
  const auto& behavior = manager.record_workload(GetParam(), 250, 19);
  ASSERT_EQ(behavior.size(), 250u);
  for (const auto& rec : behavior) {
    // Serialization round-trips every recorded seed.
    ByteWriter w;
    rec.seed.serialize(w);
    ByteReader r(w.data());
    const auto back = VmSeed::deserialize(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), rec.seed);
    // Seeds stay within the paper's §VI-D budget.
    EXPECT_LE(rec.seed.byte_size(), 474u);
  }
}

TEST_P(WorkloadProperty, BootedReplayReachesEveryRecordedReason) {
  hv::Hypervisor hv(3, 0.0);
  Manager manager(hv);
  // Boot the test VM first so steady-state traces are recorded from a
  // booted guest, then replay boot + workload onto the dummy.
  const auto& boot = manager.record_workload(Workload::kOsBoot, 200, 19);
  const auto& behavior = manager.record_workload(GetParam(), 200, 23);
  ASSERT_TRUE(manager.enable_replay());
  for (const auto& rec : boot) {
    ASSERT_EQ(manager.submit_seed(rec.seed).failure, hv::FailureKind::kNone);
  }
  for (const auto& rec : behavior) {
    const auto outcome = manager.submit_seed(rec.seed);
    ASSERT_EQ(outcome.failure, hv::FailureKind::kNone);
    EXPECT_EQ(outcome.dispatched_reason, rec.seed.reason);
  }
}

TEST_P(WorkloadProperty, ReplayIsFasterThanRealExecution) {
  // Fig 9's invariant: replay never loses to real guest execution.
  hv::Hypervisor hv(3, 0.0);
  Manager manager(hv);
  const auto t0 = hv.clock().rdtsc();
  const auto& behavior = manager.record_workload(GetParam(), 200, 19);
  const auto real_cycles = hv.clock().rdtsc() - t0;

  const auto t1 = hv.clock().rdtsc();
  manager.replay(behavior);
  const auto replay_cycles = hv.clock().rdtsc() - t1;
  EXPECT_LT(replay_cycles, real_cycles) << guest::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         ::testing::Values(Workload::kOsBoot, Workload::kCpuBound,
                                           Workload::kMemBound, Workload::kIoBound,
                                           Workload::kIdle),
                         [](const auto& param_info) {
                           std::string name(guest::to_string(param_info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Property: mutation never changes seed structure, only one value. ---

class MutationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationProperty, MutantDiffersByExactlyOneBit) {
  hv::Hypervisor hv(5, 0.0);
  Manager manager(hv);
  const auto& behavior = manager.record_workload(Workload::kCpuBound, 50, 31);
  fuzz::Mutator mutator(GetParam());
  for (const auto& rec : behavior) {
    for (const auto area : {fuzz::MutationArea::kVmcs, fuzz::MutationArea::kGpr}) {
      const auto mutant = mutator.mutate(rec.seed, area);
      ASSERT_TRUE(mutant.has_value());
      ASSERT_EQ(mutant->items.size(), rec.seed.items.size());
      std::uint64_t total_diff_bits = 0;
      for (std::size_t i = 0; i < rec.seed.items.size(); ++i) {
        EXPECT_EQ(mutant->items[i].kind, rec.seed.items[i].kind);
        EXPECT_EQ(mutant->items[i].encoding, rec.seed.items[i].encoding);
        total_diff_bits += static_cast<std::uint64_t>(
            __builtin_popcountll(mutant->items[i].value ^ rec.seed.items[i].value));
      }
      EXPECT_EQ(total_diff_bits, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// --- Property: entry checks accept all states reachable by replaying
// recorded (unmutated) behaviors. ---

class EntryCheckProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EntryCheckProperty, RecordedBehaviorsPassEntryChecks) {
  hv::Hypervisor hv(GetParam(), 0.0);
  Manager manager(hv);
  for (const auto w : {Workload::kOsBoot, Workload::kCpuBound}) {
    const auto& behavior = manager.record_workload(w, 150, GetParam());
    ASSERT_EQ(behavior.size(), 150u) << "record crashed";
    EXPECT_TRUE(vtx::check_guest_state(manager.test_vm().vcpu().vmcs).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntryCheckProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

// --- Property: coverage accumulation is monotone and order-insensitive
// in total. ---

TEST(CoverageProperty, CumulativeCurveIsMonotone) {
  hv::Hypervisor hv(7, 0.02);
  Manager manager(hv);
  const auto& behavior = manager.record_workload(Workload::kOsBoot, 300, 11);
  const auto curve = cumulative_coverage(hv.coverage(), behavior);
  ASSERT_EQ(curve.size(), behavior.size());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(CoverageProperty, AccumulatorTotalIndependentOfOrder) {
  hv::Hypervisor hv(7, 0.0);
  Manager manager(hv);
  const auto& behavior = manager.record_workload(Workload::kIoBound, 200, 11);
  hv::CoverageAccumulator forward(hv.coverage());
  hv::CoverageAccumulator backward(hv.coverage());
  for (const auto& rec : behavior) forward.add(rec.metrics.coverage);
  for (auto it = behavior.rbegin(); it != behavior.rend(); ++it) {
    backward.add(it->metrics.coverage);
  }
  EXPECT_EQ(forward.total_loc(), backward.total_loc());
  EXPECT_EQ(forward.unique_blocks(), backward.unique_blocks());
}

}  // namespace
}  // namespace iris
