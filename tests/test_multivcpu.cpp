// Multi-vCPU support (paper §IX): the VMCS is per-vCPU, so IRIS can
// record and replay distinct vCPU exit flows of the same VM. Exits are
// handled atomically (one exit fully processed before the next), so an
// interleaved recording is a valid merge of per-vCPU streams.
#include <gtest/gtest.h>

#include "guest/guest_ops.h"
#include "iris/recorder.h"
#include "iris/replayer.h"
#include "vtx/entry_checks.h"

namespace iris {
namespace {

using vcpu::Gpr;

class MultiVcpuTest : public ::testing::Test {
 protected:
  MultiVcpuTest() : hv_(37, 0.0) {
    dom_ = &hv_.create_domain(hv::DomainRole::kTest);
    dom_->add_vcpu();  // vCPU 1
    EXPECT_TRUE(hv_.launch(*dom_, 0));
    EXPECT_TRUE(hv_.launch(*dom_, 1));
  }

  hv::Hypervisor hv_;
  hv::Domain* dom_ = nullptr;
};

TEST_F(MultiVcpuTest, EachVcpuHasItsOwnVmcs) {
  EXPECT_EQ(dom_->vcpu_count(), 2u);
  EXPECT_NE(&dom_->vcpu(0).vmcs, &dom_->vcpu(1).vmcs);
  EXPECT_EQ(dom_->vcpu(0).vmcs.launch_state(),
            vtx::VmcsLaunchState::kActiveCurrentLaunched);
  EXPECT_EQ(dom_->vcpu(1).vmcs.launch_state(),
            vtx::VmcsLaunchState::kActiveCurrentLaunched);
}

TEST_F(MultiVcpuTest, VcpuStatesEvolveIndependently) {
  auto& v0 = dom_->vcpu(0);
  auto& v1 = dom_->vcpu(1);
  hv_.process_exit(*dom_, v0, guest::make_cr_write(v0, 3, 0x111000));
  hv_.process_exit(*dom_, v1, guest::make_cr_write(v1, 3, 0x222000));
  EXPECT_EQ(v0.vmcs.hw_read(vtx::VmcsField::kGuestCr3), 0x111000u);
  EXPECT_EQ(v1.vmcs.hw_read(vtx::VmcsField::kGuestCr3), 0x222000u);
}

TEST_F(MultiVcpuTest, InterleavedRecordingCapturesBothFlows) {
  auto& v0 = dom_->vcpu(0);
  auto& v1 = dom_->vcpu(1);
  Recorder recorder(hv_);
  recorder.attach();
  for (int i = 0; i < 10; ++i) {
    v0.regs.write(Gpr::kRax, 0xA00 + static_cast<std::uint64_t>(i));
    recorder.finish_exit(hv_.process_exit(*dom_, v0, guest::make_cpuid(v0, 0)));
    v1.regs.write(Gpr::kRcx, 0xB00 + static_cast<std::uint64_t>(i));
    recorder.finish_exit(hv_.process_exit(*dom_, v1, guest::make_rdtsc(v1)));
  }
  recorder.detach();
  const auto trace = recorder.take_trace();
  ASSERT_EQ(trace.size(), 20u);
  // Alternating reasons prove both flows were captured in order.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seed.reason, (i % 2) == 0 ? vtx::ExitReason::kCpuid
                                                 : vtx::ExitReason::kRdtsc)
        << i;
  }
}

TEST_F(MultiVcpuTest, PerVcpuFlowsReplayOntoSeparateDummies) {
  auto& v0 = dom_->vcpu(0);
  auto& v1 = dom_->vcpu(1);
  Recorder recorder(hv_);
  recorder.attach();
  for (int i = 0; i < 6; ++i) {
    recorder.finish_exit(
        hv_.process_exit(*dom_, v0, guest::make_cpuid(v0, 0x40000000)));
    recorder.finish_exit(
        hv_.process_exit(*dom_, v1, guest::make_cr_write(v1, 3, 0x333000)));
  }
  recorder.detach();
  const auto trace = recorder.take_trace();

  // Split the merged trace by reason (stand-in for per-vCPU tags).
  VmBehavior flow0, flow1;
  for (const auto& rec : trace) {
    (rec.seed.reason == vtx::ExitReason::kCpuid ? flow0 : flow1).push_back(rec);
  }

  hv::Domain& dummy = hv_.create_domain(hv::DomainRole::kDummy);
  dummy.add_vcpu();
  ASSERT_TRUE(hv_.launch(dummy, 0));
  ASSERT_TRUE(hv_.launch(dummy, 1));

  Replayer r0(hv_, dummy);
  ASSERT_TRUE(r0.arm());
  for (const auto& rec : flow0) {
    const auto outcome = r0.submit(rec.seed);
    EXPECT_EQ(outcome.dispatched_reason, vtx::ExitReason::kCpuid);
    EXPECT_TRUE(outcome.entered);
  }
  // The replayed CPUID flow answered the Xen leaf into vCPU 0's GPRs.
  EXPECT_EQ(dummy.vcpu(0).regs.read(Gpr::kRbx), 0x566E6558u);
}

TEST_F(MultiVcpuTest, HangWatchdogIsPerVcpu) {
  hv_.set_hang_threshold(8);
  auto& v0 = dom_->vcpu(0);
  auto& v1 = dom_->vcpu(1);
  hv::PendingExit exit;
  exit.reason = vtx::ExitReason::kRdtsc;
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(hv_.process_exit_no_entry(*dom_, v0, exit).failure,
              hv::FailureKind::kNone);
  }
  // vCPU 1's streak is independent: it can still loop safely.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(hv_.process_exit_no_entry(*dom_, v1, exit).failure,
              hv::FailureKind::kNone);
  }
}

}  // namespace
}  // namespace iris
