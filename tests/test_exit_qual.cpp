// Round-trip and bit-layout tests for the exit-qualification codecs
// (SDM Tables 27-3/27-5/27-7) that guest recipes and handlers share.
#include <gtest/gtest.h>

#include "hv/exit_qual.h"
#include "mem/ept.h"

namespace iris::hv {
namespace {

TEST(CrAccessQual, EncodeDecodeRoundTrip) {
  for (std::uint8_t cr : {0, 3, 4, 8}) {
    for (std::uint8_t type : {CrAccessQual::kMovToCr, CrAccessQual::kMovFromCr,
                              CrAccessQual::kClts, CrAccessQual::kLmsw}) {
      for (int gpr = 0; gpr < vcpu::kNumGprs; ++gpr) {
        CrAccessQual q;
        q.cr = cr;
        q.access_type = type;
        q.gpr = static_cast<vcpu::Gpr>(gpr);
        q.lmsw_source = 0xBEEF;
        const auto back = CrAccessQual::decode(q.encode());
        EXPECT_EQ(back.cr, cr);
        EXPECT_EQ(back.access_type, type);
        EXPECT_EQ(back.gpr, q.gpr);
        EXPECT_EQ(back.lmsw_source, 0xBEEF);
      }
    }
  }
}

TEST(CrAccessQual, ArchitecturalBitPositions) {
  CrAccessQual q;
  q.cr = 0;
  q.access_type = CrAccessQual::kMovToCr;
  q.gpr = vcpu::Gpr::kRax;
  EXPECT_EQ(q.encode(), 0u);  // "CR_ACCESS, ax, MOVE_TO, CR0" is all-zeros
  q.cr = 4;
  EXPECT_EQ(q.encode() & 0xF, 4u);
  q.access_type = CrAccessQual::kMovFromCr;
  EXPECT_EQ((q.encode() >> 4) & 0x3, 1u);
  q.gpr = vcpu::Gpr::kRbx;  // encoding 3
  EXPECT_EQ((q.encode() >> 8) & 0xF, 3u);
}

TEST(IoQual, EncodeDecodeRoundTrip) {
  for (std::uint8_t size : {1, 2, 4}) {
    for (const bool in : {false, true}) {
      for (const bool str : {false, true}) {
        IoQual q;
        q.size = size;
        q.in = in;
        q.string = str;
        q.rep = str;
        q.port = 0x3F8;
        const auto back = IoQual::decode(q.encode());
        EXPECT_EQ(back.size, size);
        EXPECT_EQ(back.in, in);
        EXPECT_EQ(back.string, str);
        EXPECT_EQ(back.rep, str);
        EXPECT_EQ(back.port, 0x3F8);
      }
    }
  }
}

TEST(IoQual, ArchitecturalBitPositions) {
  IoQual q;
  q.size = 4;  // encoded as size-1 = 3
  q.in = true;
  q.port = 0xCF8;
  const auto bits = q.encode();
  EXPECT_EQ(bits & 0x7, 3u);
  EXPECT_TRUE(bits & (1ULL << 3));
  EXPECT_EQ(bits >> 16, 0xCF8u);
}

TEST(EptQual, EncodeDecodeRoundTrip) {
  EptQual q;
  q.read = true;
  q.write = true;
  q.fetch = false;
  q.perms = 5;
  q.gla_valid = true;
  const auto back = EptQual::decode(q.encode());
  EXPECT_TRUE(back.read);
  EXPECT_TRUE(back.write);
  EXPECT_FALSE(back.fetch);
  EXPECT_EQ(back.perms, 5);
  EXPECT_TRUE(back.gla_valid);
}

TEST(EptQual, MatchesEptWalkQualification) {
  // The EPT model emits qualifications the codec must parse.
  mem::Ept ept;
  ept.map(1, 1, mem::EptPerms{.read = true, .write = false, .exec = true});
  const auto walk = ept.translate(0x1000, mem::EptAccess::kWrite);
  ASSERT_EQ(walk.status, mem::EptWalkStatus::kViolation);
  const auto q = EptQual::decode(walk.qualification);
  EXPECT_TRUE(q.write);
  EXPECT_FALSE(q.read);
  EXPECT_EQ(q.perms, 5);  // R + X
}

}  // namespace
}  // namespace iris::hv
