// Unit tests for the memory substrate: guest-physical address space,
// EPT walks, and the PIO/MMIO registries.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mem/address_space.h"
#include "mem/ept.h"
#include "mem/io_space.h"

namespace iris::mem {
namespace {

TEST(AddressSpace, ReadUnmaterializedIsZero) {
  AddressSpace as(1 << 20);
  std::array<std::uint8_t, 8> buf = {0xFF};
  EXPECT_TRUE(as.read(0x1000, buf));
  for (const auto b : buf) EXPECT_EQ(b, 0);
  EXPECT_EQ(as.resident_pages(), 0u);
}

TEST(AddressSpace, WriteReadRoundTrip) {
  AddressSpace as(1 << 20);
  const std::array<std::uint8_t, 4> data = {1, 2, 3, 4};
  EXPECT_TRUE(as.write(0x2000, data));
  std::array<std::uint8_t, 4> back{};
  EXPECT_TRUE(as.read(0x2000, back));
  EXPECT_EQ(back, data);
  EXPECT_EQ(as.resident_pages(), 1u);
}

TEST(AddressSpace, CrossPageAccess) {
  AddressSpace as(1 << 20);
  std::array<std::uint8_t, 16> data{};
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t gpa = kPageSize - 8;  // straddles two pages
  EXPECT_TRUE(as.write(gpa, data));
  std::array<std::uint8_t, 16> back{};
  EXPECT_TRUE(as.read(gpa, back));
  EXPECT_EQ(back, data);
  EXPECT_EQ(as.resident_pages(), 2u);
}

TEST(AddressSpace, OutOfRangeRejected) {
  AddressSpace as(0x1000);
  const std::array<std::uint8_t, 4> data = {1};
  EXPECT_FALSE(as.write(0x2000, data));
  EXPECT_FALSE(as.write(0xFFE, data));  // crosses the end
  std::array<std::uint8_t, 4> buf = {9, 9, 9, 9};
  EXPECT_FALSE(as.read(0x2000, buf));
  for (const auto b : buf) EXPECT_EQ(b, 0);  // zero-filled on failure
}

TEST(AddressSpace, U64Helpers) {
  AddressSpace as(1 << 20);
  EXPECT_TRUE(as.write_u64(0x3000, 0x1122334455667788ULL));
  EXPECT_EQ(as.read_u64(0x3000), 0x1122334455667788ULL);
}

TEST(AddressSpace, SnapshotRestore) {
  AddressSpace as(1 << 20);
  as.write_u64(0x1000, 42);
  const auto snap = as.snapshot_pages();
  as.write_u64(0x1000, 99);
  as.restore_pages(snap);
  EXPECT_EQ(as.read_u64(0x1000), 42u);
}

/// Full byte image of a (small) address space, including zero reads of
/// unmaterialized pages — the ground truth a delta restore must match.
std::vector<std::uint8_t> dump(const AddressSpace& as) {
  std::vector<std::uint8_t> image(as.size());
  EXPECT_TRUE(as.read(0, image));
  return image;
}

TEST(AddressSpace, DeltaRestoreIsByteIdenticalAcrossInterleavedWritesAndSnapshots) {
  AddressSpace as(1 << 16);  // 16 pages: full dumps stay cheap
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // deterministic value stream
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };

  as.write_u64(0x0100, next());
  as.write_u64(0x3FF8, next());  // page-straddling write
  const auto snap_a = as.snapshot_pages();
  const auto image_a = dump(as);

  as.write_u64(0x0100, next());   // dirty an existing page
  as.write_u64(0x8000, next());   // materialize a new page
  const auto snap_b = as.snapshot_pages();
  const auto image_b = dump(as);

  as.write_u64(0xC000, next());   // dirty after the second snapshot too

  as.restore_pages(snap_a);
  EXPECT_EQ(dump(as), image_a);

  // Re-dirty and restore the *newer* snapshot over the older state.
  as.write_u64(0x0108, next());
  as.restore_pages(snap_b);
  EXPECT_EQ(dump(as), image_b);

  // Back to the older snapshot once more (no writes since the restore).
  as.restore_pages(snap_a);
  EXPECT_EQ(dump(as), image_a);
}

TEST(AddressSpace, DeltaRestoreDropsPagesMaterializedAfterCapture) {
  AddressSpace as(1 << 16);
  as.write_u64(0x1000, 7);
  const auto snap = as.snapshot_pages();
  as.write_u64(0x5000, 8);
  EXPECT_EQ(as.resident_pages(), 2u);
  as.restore_pages(snap);
  EXPECT_EQ(as.resident_pages(), 1u);
  EXPECT_EQ(as.read_u64(0x5000), 0u);
}

TEST(AddressSpace, CapturedPagesAreImmuneToLaterWrites) {
  AddressSpace as(1 << 16);
  as.write_u64(0x2000, 0xAAAA);
  const auto snap = as.snapshot_pages();
  // Writing through the same page must copy-on-write, not mutate the
  // buffer the snapshot references.
  as.write_u64(0x2000, 0xBBBB);
  as.write_u64(0x2008, 0xCCCC);
  as.restore_pages(snap);
  EXPECT_EQ(as.read_u64(0x2000), 0xAAAAu);
  EXPECT_EQ(as.read_u64(0x2008), 0u);
}

TEST(AddressSpace, RestoreAfterResetReinsertsSnapshotPages) {
  AddressSpace as(1 << 16);
  as.write_u64(0x1000, 41);
  as.write_u64(0x7000, 43);
  const auto snap = as.snapshot_pages();
  const auto image = dump(as);
  as.reset();
  as.write_u64(0x3000, 99);  // unrelated post-reset state
  as.restore_pages(snap);
  EXPECT_EQ(dump(as), image);
  EXPECT_EQ(as.resident_pages(), 2u);
}

TEST(AddressSpace, RepeatedRestoreInAFuzzLoopShape) {
  // The mutant hot-loop pattern: one snapshot, many dirty+restore
  // rounds. Every round must come back byte-identical.
  AddressSpace as(1 << 16);
  for (std::uint64_t gpa = 0; gpa < (1 << 16); gpa += kPageSize) {
    as.write_u64(gpa, gpa + 1);
  }
  const auto snap = as.snapshot_pages();
  const auto image = dump(as);
  for (int round = 0; round < 50; ++round) {
    as.write_u64(static_cast<std::uint64_t>(round % 16) * kPageSize,
                 0xDEAD0000ULL + static_cast<std::uint64_t>(round));
    as.restore_pages(snap);
    ASSERT_EQ(dump(as), image);
  }
}

TEST(AddressSpace, JournaledRestoreOnlyVisitsDirtiedSlots) {
  // The O(dirtied) contract: with many resident pages, a restore after
  // dirtying a handful must run on the journal fast path, and the
  // journal must hold entries for the dirtied slots only.
  AddressSpace as(1 << 24);
  for (std::uint64_t page = 0; page < 2048; ++page) {
    as.write_u64(page << 12, page + 1);
  }
  const auto snap = as.snapshot_pages();
  const std::size_t entries_at_capture = as.journal_entries();

  as.write_u64(0x3000, 0xAA);
  as.write_u64(0x3008, 0xBB);  // same page: journaled once
  as.write_u64(0x9000, 0xCC);
  EXPECT_EQ(as.journal_entries(), entries_at_capture + 2u);

  const auto before = as.journaled_restores();
  as.restore_pages(snap);
  EXPECT_EQ(as.journaled_restores(), before + 1u);
  EXPECT_EQ(as.full_scan_restores(), 0u);
  EXPECT_EQ(as.read_u64(0x3000), 0x3u + 1u);
  EXPECT_EQ(as.read_u64(0x9000), 0x9u + 1u);
}

TEST(AddressSpace, JournalSurvivesInterleavedSnapshotResetRestore) {
  // Interleaved captures, restores of both vintages, and a reset() that
  // clears the journal: every path must produce the same bytes as the
  // ground-truth dump, with the reset-invalidated snapshot falling back
  // to the generation-checked full scan.
  AddressSpace as(1 << 16);
  as.write_u64(0x0000, 1);
  as.write_u64(0x4000, 2);
  const auto snap_a = as.snapshot_pages();
  const auto image_a = dump(as);

  as.write_u64(0x4000, 3);
  as.write_u64(0x8000, 4);
  const auto snap_b = as.snapshot_pages();
  const auto image_b = dump(as);

  as.restore_pages(snap_a);  // journal path
  EXPECT_EQ(dump(as), image_a);
  EXPECT_EQ(as.full_scan_restores(), 0u);

  as.restore_pages(snap_b);  // journal path, membership re-insert of 0x8000
  EXPECT_EQ(dump(as), image_b);
  EXPECT_EQ(as.full_scan_restores(), 0u);

  as.reset();  // clears the journal: both snapshots' positions invalid
  as.write_u64(0xC000, 5);
  as.restore_pages(snap_a);  // generation-checked fallback
  EXPECT_EQ(dump(as), image_a);
  EXPECT_EQ(as.full_scan_restores(), 1u);

  // Post-reset captures journal afresh and ride the fast path again.
  as.write_u64(0x0000, 6);
  const auto snap_c = as.snapshot_pages();
  const auto image_c = dump(as);
  as.write_u64(0x0000, 7);
  const auto journaled_before = as.journaled_restores();
  as.restore_pages(snap_c);
  EXPECT_EQ(dump(as), image_c);
  EXPECT_EQ(as.journaled_restores(), journaled_before + 1u);
}

TEST(AddressSpace, JournalDoesNotGrowInTheMutantHotLoop) {
  // One capture, many dirty+restore rounds over a fixed working set:
  // the journal must stay bounded by the working set, not grow per
  // round (a slot is journaled at most once per capture epoch).
  AddressSpace as(1 << 16);
  for (std::uint64_t gpa = 0; gpa < (1 << 16); gpa += kPageSize) {
    as.write_u64(gpa, gpa + 1);
  }
  const auto snap = as.snapshot_pages();
  const auto image = dump(as);
  const std::size_t entries_at_capture = as.journal_entries();
  for (int round = 0; round < 200; ++round) {
    as.write_u64(static_cast<std::uint64_t>(round % 4) * kPageSize,
                 0xBEEF0000ULL + static_cast<std::uint64_t>(round));
    as.restore_pages(snap);
  }
  EXPECT_EQ(dump(as), image);
  EXPECT_LE(as.journal_entries(), entries_at_capture + 4u);
  EXPECT_EQ(as.full_scan_restores(), 0u);
}

TEST(AddressSpace, JournalStaysBoundedWhenMutantsMaterializeNewPages) {
  // The nastier hot-loop shape: every round materializes a page that is
  // NOT part of the snapshot (restore must erase it) and the slot's
  // re-creation forgets its epoch stamp. The per-epoch dedup set must
  // keep the journal bounded anyway, and the erase must be journaled so
  // the fast path — which subsumes the membership re-insert scan —
  // still restores other snapshots correctly.
  AddressSpace as(1 << 20);
  for (std::uint64_t page = 0; page < 64; ++page) {
    as.write_u64(page << 12, page + 1);
  }
  const auto snap = as.snapshot_pages();
  const auto image = dump(as);
  const std::size_t entries_at_capture = as.journal_entries();
  for (int round = 0; round < 300; ++round) {
    as.write_u64(0x80000, static_cast<std::uint64_t>(round));  // new page
    as.write_u64(0x1000, static_cast<std::uint64_t>(round));   // snapshot page
    as.restore_pages(snap);
  }
  EXPECT_EQ(dump(as), image);
  EXPECT_EQ(as.resident_pages(), 64u);
  EXPECT_EQ(as.full_scan_restores(), 0u);
  // Working set: the new page + the dirtied snapshot page — two
  // journal entries total, not two per round.
  EXPECT_LE(as.journal_entries(), entries_at_capture + 2u);
}

TEST(AddressSpace, JournalCompactionFallsBackThenRecovers) {
  // Grow the journal past the compaction threshold with many captures
  // over a churning working set; a pre-compaction snapshot must still
  // restore correctly (via the fallback), and a fresh capture must ride
  // the journal again.
  AddressSpace as(1 << 20);
  as.write_u64(0x1000, 42);
  const auto old_snap = as.snapshot_pages();
  const auto old_image = dump(as);

  for (int epoch = 0; epoch < 2000; ++epoch) {
    as.write_u64(0x2000, static_cast<std::uint64_t>(epoch));
    (void)as.snapshot_pages();  // each capture opens a new journal epoch
  }
  // The compaction heuristic (journal > max(1024, 4x resident)) must
  // have fired at least once for 2000 epochs over ~2 resident pages.
  EXPECT_LT(as.journal_entries(), 2000u);

  as.restore_pages(old_snap);
  EXPECT_EQ(dump(as), old_image);
  EXPECT_GE(as.full_scan_restores(), 1u);
}

TEST(Ept, UnmappedAccessViolates) {
  Ept ept;
  const auto result = ept.translate(0x5000, EptAccess::kRead);
  EXPECT_EQ(result.status, EptWalkStatus::kViolation);
  EXPECT_EQ(result.qualification & 0x7, 1u);  // read access bit
}

TEST(Ept, MappedTranslation) {
  Ept ept;
  ept.map(5, 17, EptPerms{});
  const auto result = ept.translate(5 * 0x1000 + 0x123, EptAccess::kWrite);
  ASSERT_EQ(result.status, EptWalkStatus::kOk);
  EXPECT_EQ(result.host_frame, 17u);
  EXPECT_EQ(result.levels_walked, 4);
}

TEST(Ept, PermissionViolationCarriesEntryPerms) {
  Ept ept;
  ept.map(5, 5, EptPerms{.read = true, .write = false, .exec = false});
  const auto result = ept.translate(5 * 0x1000, EptAccess::kWrite);
  ASSERT_EQ(result.status, EptWalkStatus::kViolation);
  EXPECT_EQ(result.qualification & 0x7, 2u);          // write access
  EXPECT_EQ((result.qualification >> 3) & 0x7, 1u);   // entry allows R only
}

TEST(Ept, FetchPermission) {
  Ept ept;
  ept.map(1, 1, EptPerms{.read = true, .write = true, .exec = false});
  EXPECT_EQ(ept.translate(0x1000, EptAccess::kFetch).status,
            EptWalkStatus::kViolation);
  ept.protect(1, EptPerms{});
  EXPECT_EQ(ept.translate(0x1000, EptAccess::kFetch).status, EptWalkStatus::kOk);
}

TEST(Ept, UnmapRestoresViolation) {
  Ept ept;
  ept.map(7, 7, EptPerms{});
  EXPECT_EQ(ept.mapped_frames(), 1u);
  ept.unmap(7);
  EXPECT_EQ(ept.mapped_frames(), 0u);
  EXPECT_EQ(ept.translate(7 * 0x1000, EptAccess::kRead).status,
            EptWalkStatus::kViolation);
}

TEST(Ept, MisconfigDetection) {
  Ept ept;
  ept.poison_misconfig(9);
  EXPECT_EQ(ept.translate(9 * 0x1000, EptAccess::kRead).status,
            EptWalkStatus::kMisconfig);
}

TEST(Ept, IdentityMapRange) {
  Ept ept;
  ept.identity_map(64);
  EXPECT_EQ(ept.mapped_frames(), 64u);
  for (std::uint64_t gfn : {0ULL, 31ULL, 63ULL}) {
    const auto r = ept.translate(gfn << 12, EptAccess::kRead);
    ASSERT_EQ(r.status, EptWalkStatus::kOk);
    EXPECT_EQ(r.host_frame, gfn);
  }
  EXPECT_EQ(ept.translate(64ULL << 12, EptAccess::kRead).status,
            EptWalkStatus::kViolation);
}

TEST(Ept, ResetIdentityMatchesFreshIdentityMap) {
  Ept fresh;
  fresh.identity_map(4096);

  Ept used;
  used.identity_map(4096);
  // On-demand populate, permission churn, poison — everything the
  // EPT-violation handler and the failure tests can do to a table.
  used.map(0x2'0000, 0x2'0000, EptPerms{});
  used.map(0x9'9999, 0x1234, EptPerms{true, false, false});
  used.protect(7, EptPerms{true, true, false});
  used.poison_misconfig(9);
  used.unmap(11);
  EXPECT_NE(used.digest(), fresh.digest());

  used.reset_identity(4096);
  EXPECT_EQ(used.digest(), fresh.digest());
  EXPECT_EQ(used.mapped_frames(), fresh.mapped_frames());
  // Spot-check behavior, not just the digest.
  EXPECT_EQ(used.translate(11ULL << 12, EptAccess::kRead).status,
            EptWalkStatus::kOk);
  EXPECT_EQ(used.translate(9ULL << 12, EptAccess::kRead).status,
            EptWalkStatus::kOk);
  EXPECT_EQ(used.translate(0x2'0000ULL << 12, EptAccess::kRead).status,
            EptWalkStatus::kViolation);
}

TEST(Ept, SparseHighAddresses) {
  Ept ept;
  const std::uint64_t gfn = (1ULL << 35) - 1;  // top of the 36-bit space
  ept.map(gfn, 123, EptPerms{});
  const auto r = ept.translate(gfn << 12, EptAccess::kRead);
  ASSERT_EQ(r.status, EptWalkStatus::kOk);
  EXPECT_EQ(r.host_frame, 123u);
}

TEST(PioSpace, DispatchByPort) {
  PioSpace pio;
  int calls = 0;
  pio.register_range(0x60, 5, "kbd",
                     [&calls](std::uint16_t port, bool, std::uint8_t,
                              std::uint64_t) -> IoResult {
                       ++calls;
                       return {true, port};
                     });
  EXPECT_TRUE(pio.access(0x60, false, 1, 0).handled);
  EXPECT_TRUE(pio.access(0x64, false, 1, 0).handled);
  EXPECT_FALSE(pio.access(0x65, false, 1, 0).handled);
  EXPECT_FALSE(pio.access(0x5F, false, 1, 0).handled);
  EXPECT_EQ(calls, 2);
}

TEST(PioSpace, UnclaimedPortsFloatHigh) {
  PioSpace pio;
  const auto result = pio.access(0x300, false, 1, 0);
  EXPECT_FALSE(result.handled);
  EXPECT_EQ(result.value, ~0ULL);
}

TEST(PioSpace, OwnerLookup) {
  PioSpace pio;
  pio.register_range(0x3F8, 8, "uart", [](std::uint16_t, bool, std::uint8_t,
                                          std::uint64_t) -> IoResult {
    return {true, 0};
  });
  EXPECT_EQ(pio.owner(0x3FF).value_or(""), "uart");
  EXPECT_FALSE(pio.owner(0x400).has_value());
}

TEST(MmioSpace, RangeDispatch) {
  MmioSpace mmio;
  mmio.register_range(kApicMmioBase, kApicMmioSize, "vlapic",
                      [](std::uint64_t gpa, bool, std::uint8_t,
                         std::uint64_t) -> IoResult {
                        return {true, gpa & 0xFFF};
                      });
  EXPECT_TRUE(mmio.covers(kApicMmioBase + 0x80));
  EXPECT_FALSE(mmio.covers(kApicMmioBase + kApicMmioSize));
  const auto r = mmio.access(kApicMmioBase + 0x80, false, 4, 0);
  EXPECT_TRUE(r.handled);
  EXPECT_EQ(r.value, 0x80u);
}

}  // namespace
}  // namespace iris::mem
