// Fleet-monitor tests: shard status files (full-fidelity round trip,
// atomic rewrites under a concurrent reader), and aggregate_fleet over
// hand-built fleets — live / done / stale classification, grid
// completion from grid.meta + done markers, lost-lease and quarantine
// totals, trace tails — plus an end-to-end distributed run whose
// self-published statuses aggregate to a 100%-complete fleet.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/distributed.h"
#include "campaign/grid_lease.h"
#include "campaign/monitor.h"
#include "fuzz/campaign.h"

namespace iris::campaign {
namespace {

namespace fs = std::filesystem;
using guest::Workload;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_text(const fs::path& path, const std::string& text) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

ShardStatus make_status(const std::string& id, double heartbeat,
                        bool finished) {
  ShardStatus status;
  status.shard_id = id;
  status.pid = 4242;
  status.started_unix = heartbeat - 30.0;
  status.heartbeat_unix = heartbeat;
  status.finished = finished;
  status.cells_total = 12;
  status.cells_done = 4;
  status.executed = 4000;
  status.elapsed_seconds = 30.0;
  status.mutants_per_second = 1000.0;
  return status;
}

// --- Status files ---

TEST(StatusFile, RoundTripPreservesEveryField) {
  const auto dir = scratch_dir("status-roundtrip");
  ShardStatus status = make_status("0-of-3", 1000.5, false);
  status.cells_resumed = 2;
  status.cells_poisoned = 1;
  status.harness_faults = 3;
  status.in_flight = {7, 11};
  status.counters = {{"campaign.cells_done", 4}, {"lease.lost", 1}};
  status.gauges = {{"campaign.progress", 0.25}};

  const std::string path = (dir / status_file_name("0-of-3")).string();
  ASSERT_TRUE(write_status_file(path, status).ok());

  auto read = read_status_file(path);
  ASSERT_TRUE(read.ok()) << read.error().message;
  const ShardStatus& got = read.value();
  EXPECT_EQ(got.shard_id, "0-of-3");
  EXPECT_EQ(got.pid, 4242u);
  EXPECT_DOUBLE_EQ(got.started_unix, 970.5);
  EXPECT_DOUBLE_EQ(got.heartbeat_unix, 1000.5);
  EXPECT_FALSE(got.finished);
  EXPECT_EQ(got.cells_total, 12u);
  EXPECT_EQ(got.cells_done, 4u);
  EXPECT_EQ(got.cells_resumed, 2u);
  EXPECT_EQ(got.cells_poisoned, 1u);
  EXPECT_EQ(got.harness_faults, 3u);
  EXPECT_EQ(got.executed, 4000u);
  EXPECT_DOUBLE_EQ(got.elapsed_seconds, 30.0);
  EXPECT_DOUBLE_EQ(got.mutants_per_second, 1000.0);
  EXPECT_EQ(got.in_flight, (std::vector<std::size_t>{7, 11}));
  EXPECT_EQ(got.counter("campaign.cells_done"), 4u);
  EXPECT_EQ(got.counter("lease.lost"), 1u);
  ASSERT_EQ(got.gauges.size(), 1u);
  EXPECT_EQ(got.gauges[0].first, "campaign.progress");
  EXPECT_DOUBLE_EQ(got.gauges[0].second, 0.25);
}

TEST(StatusFile, ConcurrentReaderNeverSeesATornRewrite) {
  const auto dir = scratch_dir("status-atomic");
  const std::string path = (dir / status_file_name("w")).string();
  ShardStatus a = make_status("w", 100.0, false);
  a.cells_done = 10;
  ShardStatus b = make_status("w", 200.0, false);
  b.cells_done = 20;
  // Big payloads make a torn (non-atomic) rewrite actually observable.
  for (int i = 0; i < 64; ++i) {
    a.counters.emplace_back("counter.padding." + std::to_string(i), i);
    b.counters.emplace_back("counter.padding." + std::to_string(i), i);
  }
  ASSERT_TRUE(write_status_file(path, a).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 400 && !stop.load(); ++i) {
      EXPECT_TRUE(write_status_file(path, i % 2 != 0 ? b : a).ok());
    }
    stop.store(true);
  });

  std::size_t reads = 0;
  while (!stop.load() || reads < 50) {
    auto status = read_status_file(path);
    // rename() replaces the file atomically: every read parses whole.
    ASSERT_TRUE(status.ok()) << status.error().message;
    EXPECT_EQ(status.value().shard_id, "w");
    EXPECT_TRUE(status.value().cells_done == 10 ||
                status.value().cells_done == 20)
        << status.value().cells_done;
    EXPECT_EQ(status.value().counters.size(), 64u);
    ++reads;
  }
  writer.join();
  EXPECT_GE(reads, 50u);
}

TEST(StatusFile, MissingOrCorruptFilesAreErrorValues) {
  const auto dir = scratch_dir("status-corrupt");
  EXPECT_FALSE(read_status_file((dir / "absent.json").string()).ok());
  write_text(dir / "torn.json", "{\"shard\": \"x\", \"cells_don");
  EXPECT_FALSE(read_status_file((dir / "torn.json").string()).ok());
  write_text(dir / "foreign.json", "{\"pid\": 1}");  // parses, no shard id
  EXPECT_FALSE(read_status_file((dir / "foreign.json").string()).ok());
}

// --- Fleet aggregation ---

TEST(FleetMonitor, ClassifiesThreeShardFleetWithStaleAndQuarantine) {
  const auto dir = scratch_dir("fleet-three");
  const double now = 10000.0;

  // A real grid.meta (12 cells in 3 ranges) with range 0 completed, so
  // completion comes from the lease protocol's own files.
  {
    GridLeaseConfig config;
    config.dir = dir.string();
    config.shard_id = "seed";
    config.total_cells = 12;
    config.range_size = 4;
    config.fingerprint = 0x5EED;
    auto lease = GridLease::open(config);
    ASSERT_TRUE(lease.ok());
    ASSERT_TRUE(lease.value()->try_claim(0));
    for (std::size_t cell = 0; cell < 4; ++cell) {
      lease.value()->completed(cell);
    }
    ASSERT_EQ(lease.value()->stats().completed_ranges, 1u);
  }

  // Shard 0 finished; shard 1 went silent 120 s ago (SIGKILL); shard 2
  // is live, quarantining cells and reporting a stolen lease.
  ShardStatus done = make_status("0-of-3", now - 60.0, true);
  ShardStatus dead = make_status("1-of-3", now - 120.0, false);
  ShardStatus live = make_status("2-of-3", now - 1.0, false);
  live.cells_poisoned = 2;
  live.harness_faults = 5;
  live.in_flight = {9};
  live.counters = {{"lease.lost", 1},         {"lease.reclaims", 2},
                   {"cell.rlimit_kills", 3},  {"fuzz.model_faults", 4},
                   {"poison.reprobes", 2},    {"poison.rehabilitated", 1}};
  for (const auto* status : {&done, &dead, &live}) {
    ASSERT_TRUE(write_status_file(
                    (dir / status_file_name(status->shard_id)).string(),
                    *status)
                    .ok());
  }
  write_text(dir / "trace-2-of-3.jsonl",
             "{\"seq\":1,\"ts_us\":10,\"event\":\"cell_start\",\"cell\":9}\n"
             "{\"seq\":2,\"ts_us\":20,\"event\":\"quarantine\",\"cell\":8}\n");

  auto fleet = aggregate_fleet(dir.string(), 15.0, now, 1);
  ASSERT_TRUE(fleet.ok()) << fleet.error().message;
  const FleetView& view = fleet.value();

  ASSERT_EQ(view.shards.size(), 3u);  // sorted by shard id
  EXPECT_EQ(view.shards[0].status.shard_id, "0-of-3");
  EXPECT_EQ(view.shards[0].state, ShardView::State::kDone);
  EXPECT_EQ(view.shards[1].status.shard_id, "1-of-3");
  EXPECT_EQ(view.shards[1].state, ShardView::State::kStale);
  EXPECT_DOUBLE_EQ(view.shards[1].heartbeat_age_seconds, 120.0);
  EXPECT_EQ(view.shards[2].status.shard_id, "2-of-3");
  EXPECT_EQ(view.shards[2].state, ShardView::State::kLive);
  EXPECT_EQ(view.done_shards, 1u);
  EXPECT_EQ(view.stale_shards, 1u);
  EXPECT_EQ(view.live_shards, 1u);

  EXPECT_EQ(view.cells_total, 12u);
  EXPECT_EQ(view.ranges_total, 3u);
  EXPECT_EQ(view.ranges_done, 1u);
  EXPECT_NEAR(view.completion_pct, 100.0 / 3.0, 1e-9);
  EXPECT_EQ(view.cells_done, 12u);      // 4 per shard
  EXPECT_EQ(view.cells_poisoned, 2u);
  EXPECT_EQ(view.harness_faults, 5u);  // only the live shard faulted
  EXPECT_EQ(view.lost_leases, 1u);
  EXPECT_EQ(view.lease_reclaims, 2u);
  // PR 9 fault-taxonomy counters fold the same way lease counters do.
  EXPECT_EQ(view.rlimit_kills, 3u);
  EXPECT_EQ(view.model_faults, 4u);
  EXPECT_EQ(view.reprobes, 2u);
  EXPECT_EQ(view.rehabilitated, 1u);
  // Throughput counts live shards only: a dead shard's last-reported
  // rate must not inflate the fleet.
  EXPECT_DOUBLE_EQ(view.mutants_per_second, 1000.0);

  // trace_tail = 1 keeps only the newest event of the stream.
  ASSERT_EQ(view.recent_events.size(), 1u);
  EXPECT_EQ(view.recent_events[0].event, "quarantine");

  // The JSON rendering keeps each shard's facts on one greppable line.
  const std::string json = render_fleet_json(view);
  EXPECT_NE(json.find("{\"shard\": \"1-of-3\", \"state\": \"stale\""),
            std::string::npos);
  EXPECT_NE(json.find("{\"shard\": \"2-of-3\", \"state\": \"live\""),
            std::string::npos);
  // Fleet-level fault-taxonomy keys are present for scripted monitors.
  EXPECT_NE(json.find("\"rlimit_kills\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"model_faults\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"reprobes\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rehabilitated\": 1"), std::string::npos);
}

TEST(FleetMonitor, EmptyDirIsAnEmptyFleetAndMissingDirAnError) {
  const auto dir = scratch_dir("fleet-empty");
  auto fleet = aggregate_fleet(dir.string(), 15.0, 100.0);
  ASSERT_TRUE(fleet.ok());
  EXPECT_TRUE(fleet.value().shards.empty());
  EXPECT_EQ(fleet.value().completion_pct, 0.0);
  EXPECT_FALSE(
      aggregate_fleet((dir / "missing").string(), 15.0, 100.0).ok());
}

TEST(FleetMonitor, TornStatusFilesAreSkippedNotFatal) {
  const auto dir = scratch_dir("fleet-torn");
  ASSERT_TRUE(write_status_file((dir / status_file_name("ok")).string(),
                                make_status("ok", 99.0, false))
                  .ok());
  write_text(dir / "status-torn.json", "{\"shard\": \"to");
  auto fleet = aggregate_fleet(dir.string(), 15.0, 100.0);
  ASSERT_TRUE(fleet.ok());
  ASSERT_EQ(fleet.value().shards.size(), 1u);
  EXPECT_EQ(fleet.value().shards[0].status.shard_id, "ok");
}

// --- End to end: shards publish, the monitor aggregates ---

TEST(FleetMonitor, DistributedShardsPublishStatusesThatAggregateComplete) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 80, 7);
  const auto dir = scratch_dir("fleet-e2e");

  fuzz::CampaignConfig base;
  base.workers = 2;
  base.hv_seed = 17;
  base.record_exits = 150;
  base.record_seed = 3;
  base.status_interval_seconds = 0.0;  // publish every beat

  for (const std::string shard : {"0-of-2", "1-of-2"}) {
    ShardConfig config;
    config.lease_dir = dir.string();
    config.shard_id = shard;
    config.advisory_shards = 2;
    auto run = DistributedCampaign(config, base).run(grid);
    ASSERT_TRUE(run.ok()) << run.error().message;
  }

  auto fleet = aggregate_fleet(dir.string(), 30.0, wall_clock_unix());
  ASSERT_TRUE(fleet.ok()) << fleet.error().message;
  const FleetView& view = fleet.value();
  ASSERT_EQ(view.shards.size(), 2u);
  for (const ShardView& shard : view.shards) {
    EXPECT_EQ(shard.state, ShardView::State::kDone);
    EXPECT_TRUE(shard.status.finished);
    EXPECT_EQ(shard.status.cells_total, grid.size());
  }
  EXPECT_EQ(view.done_shards, 2u);
  EXPECT_GT(view.ranges_total, 0u);
  EXPECT_EQ(view.ranges_done, view.ranges_total);
  EXPECT_DOUBLE_EQ(view.completion_pct, 100.0);
  // Together the shards journaled the whole grid (first shard may take
  // everything if it finishes before the second starts).
  EXPECT_GE(view.cells_done, grid.size());
  EXPECT_GT(view.executed, 0u);
}

}  // namespace
}  // namespace iris::campaign
