// Tests for the per-reason exit handlers, driven through the full
// process_exit pipeline with guest-op recipes.
#include <gtest/gtest.h>

#include "guest/guest_ops.h"
#include "hv/hypervisor.h"
#include "vcpu/vmcs_sync.h"
#include "vtx/entry_checks.h"

namespace iris::hv {
namespace {

using guest::make_apic_access;
using guest::make_cpuid;
using guest::make_cr_read;
using guest::make_cr_write;
using guest::make_ept_touch;
using guest::make_exception;
using guest::make_hlt;
using guest::make_io;
using guest::make_msr_read;
using guest::make_msr_write;
using guest::make_rdtsc;
using guest::make_string_io;
using guest::make_vmcall;
using vcpu::Gpr;
using vtx::ExitReason;
using vtx::VmcsField;

class HandlerTest : public ::testing::Test {
 protected:
  HandlerTest() : hv_(/*noise_seed=*/1, /*async_noise_prob=*/0.0) {
    dom_ = &hv_.create_domain(DomainRole::kTest);
    EXPECT_TRUE(hv_.launch(*dom_));
    vcpu_ = &dom_->vcpu();
  }

  HandleOutcome run(const PendingExit& exit) {
    return hv_.process_exit(*dom_, *vcpu_, exit);
  }

  Hypervisor hv_;
  Domain* dom_ = nullptr;
  HvVcpu* vcpu_ = nullptr;
};

TEST_F(HandlerTest, CpuidVendorLeaf) {
  const auto outcome = run(make_cpuid(*vcpu_, 0));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRbx), 0x756E6547u);  // "Genu"
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRcx), 0x6C65746Eu);  // "ntel"
}

TEST_F(HandlerTest, CpuidFeatureLeafSetsHypervisorBit) {
  const auto outcome = run(make_cpuid(*vcpu_, 1));
  ASSERT_TRUE(outcome.entered);
  EXPECT_TRUE(vcpu_->regs.read(Gpr::kRcx) & (1ULL << 31));
}

TEST_F(HandlerTest, CpuidXenLeaf) {
  run(make_cpuid(*vcpu_, 0x40000001));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax), (4ULL << 16) | 16);  // Xen 4.16
}

TEST_F(HandlerTest, CpuidCacheSubleavesDiffer) {
  run(make_cpuid(*vcpu_, 4, 0));
  const auto sub0 = vcpu_->regs.read(Gpr::kRax);
  run(make_cpuid(*vcpu_, 4, 2));
  const auto sub2 = vcpu_->regs.read(Gpr::kRax);
  EXPECT_NE(sub0, sub2);
}

TEST_F(HandlerTest, RipAdvancesPastInstruction) {
  vcpu_->regs.rip = 0x1000;
  run(make_cpuid(*vcpu_, 0));
  EXPECT_EQ(vcpu_->regs.rip, 0x1002u);  // CPUID is 2 bytes
}

TEST_F(HandlerTest, RdtscComposesEdxEax) {
  hv_.clock().advance(0x1'2345'6789ULL);
  vcpu_->vmcs.hw_write(VmcsField::kTscOffset, 0);
  run(make_rdtsc(*vcpu_));
  const auto lo = vcpu_->regs.read(Gpr::kRax);
  const auto hi = vcpu_->regs.read(Gpr::kRdx);
  EXPECT_LE(lo, 0xFFFFFFFFu);
  EXPECT_GT((hi << 32) | lo, 0x1'2345'6789ULL);  // clock advanced further
}

TEST_F(HandlerTest, RdtscHonorsTscOffset) {
  vcpu_->vmcs.hw_write(VmcsField::kTscOffset, 1ULL << 40);
  run(make_rdtsc(*vcpu_));
  EXPECT_GE(vcpu_->regs.read(Gpr::kRdx), (1ULL << 40) >> 32);
}

TEST_F(HandlerTest, MsrWriteToTscFoldsIntoOffset) {
  run(make_msr_write(*vcpu_, vcpu::kMsrIa32Tsc, 0x100000));
  EXPECT_NE(vcpu_->vmcs.hw_read(VmcsField::kTscOffset), 0u);
}

TEST_F(HandlerTest, EferWritePersistsToVmcs) {
  run(make_msr_write(*vcpu_, vcpu::kMsrIa32Efer, 0x100));  // LME
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestIa32Efer), 0x100u);
}

TEST_F(HandlerTest, EferReservedBitInjectsGp) {
  const auto outcome = run(make_msr_write(*vcpu_, vcpu::kMsrIa32Efer, 1ULL << 20));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestIa32Efer), 0u);  // rejected
}

TEST_F(HandlerTest, UnknownMsrReadInjectsGp) {
  // Interrupts enabled so the injected event passes entry checks.
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  const auto outcome = run(make_msr_read(*vcpu_, 0xDEAD));
  EXPECT_TRUE(outcome.entered);
}

TEST_F(HandlerTest, UnknownMsrWriteIsIgnored) {
  const auto outcome = run(make_msr_write(*vcpu_, 0xDEAD, 1));
  EXPECT_TRUE(outcome.entered);  // Xen drops it silently
  EXPECT_TRUE(hv_.log().contains("ignoring WRMSR"));
}

TEST_F(HandlerTest, SysenterMsrsLandInVmcs) {
  run(make_msr_write(*vcpu_, vcpu::kMsrIa32SysenterEip, 0xAAA));
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestSysenterEip), 0xAAAu);
  run(make_msr_read(*vcpu_, vcpu::kMsrIa32SysenterEip));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax), 0xAAAu);
}

TEST_F(HandlerTest, IoInReadsDeviceAndMergesBySize) {
  vcpu_->regs.write(Gpr::kRax, 0xFFFFFFFF'FFFFFF00ULL);
  run(make_io(*vcpu_, mem::kPortKbdStatus, true, 1));
  // 1-byte IN merges into the low byte only.
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax) & 0xFF, 0x1Cu);
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax) >> 8, 0xFFFFFFFF'FFFFFFULL);
}

TEST_F(HandlerTest, IoFourByteInZeroExtends) {
  vcpu_->regs.write(Gpr::kRax, ~0ULL);
  run(make_io(*vcpu_, mem::kPortPciConfigAddr, true, 4));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax) >> 32, 0u);
}

TEST_F(HandlerTest, CmosIndexDataDialog) {
  run(make_io(*vcpu_, mem::kPortCmosIndex, false, 1, 0x0D));  // status D
  run(make_io(*vcpu_, mem::kPortCmosData, true, 1));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax) & 0xFF, 0x80u);  // battery good
}

TEST_F(HandlerTest, StringIoCopiesGuestMemory) {
  const char msg[] = "hello";
  hv_.copy_to_guest(*dom_, 0x8000,
                    std::span(reinterpret_cast<const std::uint8_t*>(msg), 5));
  const auto outcome = run(make_string_io(*vcpu_, mem::kPortSerialCom1, false,
                                          0x8000, 5));
  ASSERT_TRUE(outcome.entered);
  // The emulator path was taken (emulate.c blocks present).
  EXPECT_GT(outcome.coverage.loc_in(hv_.coverage(), Component::kEmulate), 0u);
}

TEST_F(HandlerTest, HltWithoutPendingInterruptBlocks) {
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  const auto outcome = run(make_hlt(*vcpu_));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestActivityState), vtx::kActivityHlt);
}

TEST_F(HandlerTest, HltWakesOnPendingInterrupt) {
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  dom_->irq().assert_vector(0x30, hv_.coverage());
  const auto outcome = run(make_hlt(*vcpu_));
  ASSERT_TRUE(outcome.entered);
  // The interrupt assist injected and the vCPU is active again.
  EXPECT_TRUE(outcome.injected_vector.has_value());
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestActivityState),
            vtx::kActivityActive);
}

TEST_F(HandlerTest, CrWriteUpdatesShadowAndRealCr0) {
  const std::uint64_t value = vtx::kCr0Pe | vtx::kCr0Ne | vtx::kCr0Et;
  const auto outcome = run(make_cr_write(*vcpu_, 0, value));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kCr0ReadShadow), value);
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestCr0) & vtx::kCr0Pe, vtx::kCr0Pe);
  EXPECT_EQ(vcpu_->mode_cache, vcpu::CpuMode::kMode2);
}

TEST_F(HandlerTest, CrReadComposesShadowAndReal) {
  // Host owns PE via the guest/host mask; shadow says PE=0, real has PE=1.
  vcpu_->vmcs.hw_write(VmcsField::kCr0GuestHostMask, vtx::kCr0Pe);
  vcpu_->vmcs.hw_write(VmcsField::kCr0ReadShadow, 0);
  vcpu_->vmcs.hw_write(VmcsField::kGuestCr0, vtx::kCr0Pe | vtx::kCr0Ne | vtx::kCr0Et);
  run(make_cr_read(*vcpu_, 0, Gpr::kRbx));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRbx) & vtx::kCr0Pe, 0u);  // shadow wins
  EXPECT_NE(vcpu_->regs.read(Gpr::kRbx) & vtx::kCr0Ne, 0u);  // real shows through
}

TEST_F(HandlerTest, Cr3WriteAndRead) {
  run(make_cr_write(*vcpu_, 3, 0x123000));
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestCr3), 0x123000u);
  run(make_cr_read(*vcpu_, 3, Gpr::kRsi));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRsi), 0x123000u);
}

TEST_F(HandlerTest, Cr8MapsToTpr) {
  run(make_cr_write(*vcpu_, 8, 0x9));
  EXPECT_EQ(vcpu_->lapic.tpr(), 0x90);
  run(make_cr_read(*vcpu_, 8, Gpr::kRdi));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRdi), 0x9u);
}

TEST_F(HandlerTest, InvalidGprIndexInQualificationPanics) {
  // Register index 15 in a CR-access qualification is decodable (the
  // field is 4 bits) but maps past the 15-entry saved-GPR block: Xen's
  // decode_gpr BUG()s. Regression test for an out-of-bounds write our
  // own fuzzer found in the model.
  const std::uint64_t qual =
      (15ULL << 8) | (hv::CrAccessQual::kMovFromCr << 4) | 0;  // mov rX, cr0
  const auto outcome = run({ExitReason::kCrAccess, qual, 3, 0, 0});
  EXPECT_EQ(outcome.failure, FailureKind::kHypervisorCrash);
  EXPECT_TRUE(hv_.log().contains("decode_gpr"));
}

TEST_F(HandlerTest, InvalidGprIndexInDrQualificationPanics) {
  const std::uint64_t qual = (15ULL << 8) | (1ULL << 4) | 7;  // mov rX, dr7
  const auto outcome = run({ExitReason::kDrAccess, qual, 3, 0, 0});
  EXPECT_EQ(outcome.failure, FailureKind::kHypervisorCrash);
}

TEST_F(HandlerTest, InvalidCrNumberPanicsHypervisor) {
  // A CR number >8 can only come from a corrupted qualification — the
  // dispatcher BUG()s, exactly what fuzzed seeds trigger.
  hv::CrAccessQual qual;
  qual.cr = 6;
  qual.access_type = hv::CrAccessQual::kMovToCr;
  const PendingExit exit{ExitReason::kCrAccess, qual.encode(), 3, 0, 0};
  const auto outcome = run(exit);
  EXPECT_EQ(outcome.failure, FailureKind::kHypervisorCrash);
  EXPECT_TRUE(hv_.failures().host_is_down());
}

TEST_F(HandlerTest, ProtectedModeSwitchTakesGdtValidationPath) {
  guest::install_flat_gdt(hv_, *dom_, *vcpu_, 0x1000);
  vcpu::save_guest_state(vcpu_->regs, vcpu_->vmcs);  // refresh GDTR in VMCS
  const auto outcome =
      run(make_cr_write(*vcpu_, 0, vtx::kCr0Pe | vtx::kCr0Ne | vtx::kCr0Et));
  ASSERT_TRUE(outcome.entered);
  EXPECT_GT(outcome.coverage.loc_in(hv_.coverage(), Component::kEmulate), 0u);
}

TEST_F(HandlerTest, EptViolationPopulatesOnDemand) {
  const std::uint64_t gpa = 0x03000000;
  ASSERT_EQ(dom_->ept().translate(gpa, mem::EptAccess::kRead).status,
            mem::EptWalkStatus::kViolation);
  const auto outcome = run(make_ept_touch(*vcpu_, gpa, false));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(dom_->ept().translate(gpa, mem::EptAccess::kRead).status,
            mem::EptWalkStatus::kOk);
}

TEST_F(HandlerTest, EptViolationBeyondRamCrashesGuest) {
  const auto outcome = run(make_ept_touch(*vcpu_, 1ULL << 40, false));
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
}

TEST_F(HandlerTest, EptViolationOnApicWindowEmulates) {
  const auto outcome =
      run(make_ept_touch(*vcpu_, mem::kApicMmioBase + kApicRegTpr, false));
  ASSERT_TRUE(outcome.entered);
  EXPECT_GT(outcome.coverage.loc_in(hv_.coverage(), Component::kEmulate), 0u);
}

TEST_F(HandlerTest, ApicAccessReadAndWrite) {
  run(make_apic_access(*vcpu_, kApicRegTpr, true, 0x30));
  EXPECT_EQ(vcpu_->lapic.tpr(), 0x30);
  run(make_apic_access(*vcpu_, kApicRegTpr, false));
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax), 0x30u);
}

TEST_F(HandlerTest, VmcallDispatchesHypercall) {
  bool called = false;
  hv_.register_hypercall(0x42, [&called](Domain&, HvVcpu&,
                                         std::span<const std::uint64_t> args) {
    called = true;
    return args[0] + 1;
  });
  run(make_vmcall(*vcpu_, 0x42, 7));
  EXPECT_TRUE(called);
  EXPECT_EQ(vcpu_->regs.read(Gpr::kRax), 8u);
}

TEST_F(HandlerTest, UnknownHypercallReturnsEnosys) {
  run(make_vmcall(*vcpu_, 0x999));
  EXPECT_EQ(static_cast<std::int64_t>(vcpu_->regs.read(Gpr::kRax)), -38);
}

TEST_F(HandlerTest, TripleFaultCrashesGuest) {
  const PendingExit exit{ExitReason::kTripleFault, 0, 0, 0, 0};
  const auto outcome = run(exit);
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
  EXPECT_TRUE(hv_.log().contains("triple fault"));
}

TEST_F(HandlerTest, PageFaultReinjectedWithCr2) {
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  const auto outcome = run(make_exception(*vcpu_, 14, 0xDEADBEEF));
  ASSERT_TRUE(outcome.entered);
  EXPECT_EQ(vcpu_->regs.cr2, 0xDEADBEEFu);
}

TEST_F(HandlerTest, DoubleFaultCrashesGuest) {
  const auto outcome = run(make_exception(*vcpu_, 8));
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
}

TEST_F(HandlerTest, NestedVmxInstructionInjectsUd) {
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  const PendingExit exit{ExitReason::kVmxon, 0, 3, 0, 0};
  const auto outcome = run(exit);
  EXPECT_TRUE(outcome.entered);  // guest survives with a #UD
}

TEST_F(HandlerTest, UndefinedExitReasonPanics) {
  PendingExit exit;
  exit.reason = static_cast<ExitReason>(35);  // SDM hole
  const auto outcome = run(exit);
  EXPECT_EQ(outcome.failure, FailureKind::kHypervisorCrash);
  EXPECT_TRUE(hv_.log().contains("unexpected VM exit reason"));
}

TEST_F(HandlerTest, UnhandledDefinedReasonPanics) {
  const PendingExit exit{ExitReason::kGetsec, 0, 0, 0, 0};
  const auto outcome = run(exit);
  EXPECT_EQ(outcome.failure, FailureKind::kHypervisorCrash);
  EXPECT_TRUE(hv_.log().contains("unhandled VM exit reason"));
}

TEST_F(HandlerTest, BadRipForModeZero) {
  // A 64-bit RIP while the cached mode is still real mode: the paper's
  // §VI-B crash signature.
  vcpu_->regs.rip = 0xFFFFFFFF81000000ULL;
  const auto outcome = run(make_rdtsc(*vcpu_));
  EXPECT_EQ(outcome.failure, FailureKind::kVmCrash);
  EXPECT_TRUE(hv_.log().contains("bad RIP for mode 0"));
}

TEST_F(HandlerTest, DrAccessReadsAndWritesDr7) {
  // MOV to DR7 from RBX (qual: dr=7, write, reg=3).
  vcpu_->regs.write(Gpr::kRbx, 0x455);
  const std::uint64_t qual = 7 | (3ULL << 8);
  run({ExitReason::kDrAccess, qual, 3, 0, 0});
  EXPECT_EQ(vcpu_->vmcs.hw_read(VmcsField::kGuestDr7), 0x455u);
}

TEST_F(HandlerTest, XsetbvWithoutX87BitInjectsGp) {
  vcpu_->regs.rflags |= vtx::kRflagsIf;
  vcpu_->regs.write(Gpr::kRcx, 0);
  vcpu_->regs.write(Gpr::kRax, 0x6);  // bit 0 clear
  vcpu_->regs.write(Gpr::kRdx, 0);
  const auto outcome = run({ExitReason::kXsetbv, 0, 3, 0, 0});
  EXPECT_TRUE(outcome.entered);
}

TEST_F(HandlerTest, PreemptionTimerReloadKeepsLoopArmed) {
  vcpu_->vmcs.hw_write(VmcsField::kPinBasedVmExecControl,
                       vtx::kPinActivatePreemptionTimer);
  vcpu_->vmcs.hw_write(VmcsField::kPreemptionTimerValue, 0);
  const auto outcome = run({ExitReason::kPreemptionTimer, 0, 0, 0, 0});
  ASSERT_TRUE(outcome.entered);
  EXPECT_TRUE(outcome.preemption_timer_fired);  // the replay loop persists
}

}  // namespace
}  // namespace iris::hv
