// Fuzz-style robustness tests for the corpus wire format: SeedDb and
// behavior deserialization must survive arbitrary truncation and bit
// flips of on-disk bytes with a clean Result error (or a still-valid
// parse when the flip lands in a don't-care byte) — never a crash, an
// over-read, or a hostile allocation. These are the bytes a shared
// corpus directory or a killed writer can hand us.
#include <gtest/gtest.h>

#include <span>

#include "iris/seed_db.h"
#include "support/rng.h"

namespace iris {
namespace {

VmSeed sample_seed(std::uint64_t salt) {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kRdtsc;
  // Every third seed carries a non-baseline capability-profile id, so
  // the truncation/bit-flip sweeps below also cover the flagged wire
  // variant (bit 15 of the reason word + trailing profile byte).
  if (salt % 3 == 1) seed.profile = vtx::ProfileId::kStrictFixedCrs;
  for (std::uint8_t g = 0; g < 4; ++g) {
    seed.items.push_back(SeedItem{SeedItemKind::kGpr, g, salt * 31 + g});
  }
  seed.items.push_back(SeedItem{SeedItemKind::kVmcsField, 0, salt});
  MemChunk chunk;
  chunk.gpa = 0x1000 + salt;
  chunk.bytes = {1, 2, 3, 4};
  seed.memory.push_back(chunk);
  return seed;
}

SeedDb sample_db() {
  SeedDb db;
  for (int b = 0; b < 2; ++b) {
    VmBehavior behavior;
    for (std::uint64_t i = 0; i < 6; ++i) {
      RecordedExit rec;
      rec.seed = sample_seed(i + static_cast<std::uint64_t>(b) * 100);
      rec.metrics.cycles = 1000 + i;
      rec.metrics.vmwrites.emplace_back(vtx::VmcsField::kGuestRip, 0x100 + i);
      behavior.push_back(std::move(rec));
    }
    db.store(b == 0 ? "CPU-bound" : "IDLE", std::move(behavior));
  }
  return db;
}

TEST(SeedDbHardening, RoundTripSurvives) {
  const SeedDb db = sample_db();
  const auto bytes = db.serialize();
  auto back = SeedDb::deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), db.size());
  EXPECT_EQ(back.value().serialize(), bytes);
}

TEST(SeedDbHardening, EveryTruncationFailsCleanly) {
  const auto bytes = sample_db().serialize();
  // The length-prefixed format makes every strict prefix invalid: the
  // parser must report it as an error, not read past the span or parse
  // a half-behavior silently.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto result = SeedDb::deserialize(std::span(bytes).first(len));
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(SeedDbHardening, EverySingleBitFlipIsHandled) {
  const auto bytes = sample_db().serialize();
  std::vector<std::uint8_t> corrupted(bytes);
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      corrupted[pos] = bytes[pos] ^ static_cast<std::uint8_t>(1u << bit);
      // Either a clean error or a valid parse (a flip inside a value
      // byte produces a different but well-formed corpus). Running
      // this under ASan/UBSan in CI is what gives the "never
      // over-read" guarantee teeth.
      auto result = SeedDb::deserialize(corrupted);
      if (result.ok()) {
        EXPECT_LE(result.value().size(), 2u);
      } else {
        EXPECT_FALSE(result.error().message.empty());
      }
    }
    corrupted[pos] = bytes[pos];
  }
}

TEST(SeedDbHardening, RandomMultiByteCorruptionNeverCrashes) {
  const auto bytes = sample_db().serialize();
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 500; ++round) {
    std::vector<std::uint8_t> corrupted(bytes);
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    (void)SeedDb::deserialize(corrupted);  // must not crash or over-read
  }
}

TEST(SeedDbHardening, HostileCountsDoNotAllocate) {
  // A 20-byte stream claiming 4 billion behaviors/exits/items must be
  // rejected up front (before any reserve call can turn it into a
  // multi-gigabyte allocation).
  ByteWriter w;
  w.u32(0x49524953);   // seed-db magic
  w.u32(0xFFFFFFFF);   // behavior count
  w.str("x");
  auto db = SeedDb::deserialize(w.data());
  EXPECT_FALSE(db.ok());

  ByteWriter b;
  b.u32(0xFFFFFFFF);  // exit count
  ByteReader rb(b.data());
  EXPECT_FALSE(deserialize_behavior(rb).ok());

  ByteWriter s;
  s.u16(static_cast<std::uint16_t>(vtx::ExitReason::kRdtsc));
  s.u16(0xFFFF);  // item count with no items following
  ByteReader rs(s.data());
  EXPECT_FALSE(VmSeed::deserialize(rs).ok());
}

TEST(SeedDbHardening, TrailingGarbageRejected) {
  auto bytes = sample_db().serialize();
  bytes.push_back(0x42);
  EXPECT_FALSE(SeedDb::deserialize(bytes).ok());
}

TEST(SeedDbHardening, ProfiledSeedWireIsValidated) {
  // Flag bit set but the stream ends before the profile byte.
  ByteWriter truncated;
  truncated.u16(static_cast<std::uint16_t>(vtx::ExitReason::kRdtsc) | 0x8000);
  ByteReader rt(truncated.data());
  EXPECT_FALSE(VmSeed::deserialize(rt).ok());

  // Flagged profile byte outside the library: corruption, not a seed.
  ByteWriter invalid;
  invalid.u16(static_cast<std::uint16_t>(vtx::ExitReason::kRdtsc) | 0x8000);
  invalid.u8(0xEE);
  invalid.u16(0);  // items
  invalid.u16(0);  // memory chunks
  ByteReader ri(invalid.data());
  EXPECT_FALSE(VmSeed::deserialize(ri).ok());

  // A flagged *baseline* byte never comes from our writer; rejecting it
  // keeps serialize∘deserialize an identity on the wire.
  ByteWriter flagged;
  flagged.u16(static_cast<std::uint16_t>(vtx::ExitReason::kRdtsc) | 0x8000);
  flagged.u8(0);
  flagged.u16(0);
  flagged.u16(0);
  ByteReader rf(flagged.data());
  EXPECT_FALSE(VmSeed::deserialize(rf).ok());

  // The straight profiled round trip, item for item.
  VmSeed seed = sample_seed(1);
  ASSERT_NE(seed.profile, vtx::ProfileId::kBaseline);
  ByteWriter out;
  seed.serialize(out);
  EXPECT_EQ(out.size(), seed.byte_size());
  ByteReader in(out.data());
  auto back = VmSeed::deserialize(in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().profile, seed.profile);
  ByteWriter again;
  back.value().serialize(again);
  EXPECT_EQ(again.data(), out.data());
}

}  // namespace
}  // namespace iris
