// Tests for containment beyond the cell boundary (PR 9): per-cell
// resource limits (rlimit kills classified as ResourceExhausted, never
// shard death), structured model-layer faults delivered over the
// sandbox result pipe, and the poison-aware re-probe scheduler with its
// v5 journal records — all proven deterministic across kill/resume and
// multi-journal reduce.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/reducer.h"
#include "fuzz/campaign.h"
#include "support/failpoints.h"
#include "support/model_fault.h"

namespace iris::campaign {
namespace {

namespace fs = std::filesystem;
namespace failpoints = support::failpoints;
namespace modelfault = support::modelfault;
using fuzz::CampaignConfig;
using fuzz::CampaignRunner;
using fuzz::HarnessFault;
using guest::Workload;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    const auto status = failpoints::configure(spec);
    EXPECT_TRUE(status.ok()) << status.error().message;
  }
  ~FailpointGuard() { failpoints::clear(); }
};

CampaignConfig small_config(std::size_t workers) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

CampaignConfig sandbox_config(std::size_t workers) {
  CampaignConfig config = small_config(workers);
  config.sandbox_cells = true;
  config.cell_retries = 1;
  config.retry_base_backoff_ms = 0.1;
  return config;
}

std::vector<fuzz::TestCaseSpec> small_grid(std::size_t mutants = 40) {
  return fuzz::make_table1_grid({Workload::kCpuBound}, mutants, 7);
}

// --- New failpoint actions ---

TEST(FailpointActions, AllocActionCarriesTheByteAmount) {
  const FailpointGuard guard("probe:alloc=268435456");
  const auto hit = failpoints::evaluate("probe");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, failpoints::Hit::Action::kAlloc);
  EXPECT_EQ(hit->amount, 268435456u);
}

TEST(FailpointActions, ModelSitesArmOnlyForModelPrefixedRules) {
  EXPECT_FALSE(failpoints::model_sites_armed());
  {
    const FailpointGuard guard("cell_exec:signal=KILL");
    EXPECT_FALSE(failpoints::model_sites_armed());
  }
  {
    const FailpointGuard guard("model_vmentry:modelfault:cell=3");
    EXPECT_TRUE(failpoints::model_sites_armed());
    const auto miss = failpoints::evaluate("model_vmentry", 2);
    EXPECT_FALSE(miss.has_value());
    const auto hit = failpoints::evaluate("model_vmentry", 3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->action, failpoints::Hit::Action::kModelFault);
  }
  EXPECT_FALSE(failpoints::model_sites_armed());
}

TEST(FailpointActions, MalformedAllocAmountIsRejected) {
  const auto status = failpoints::configure("probe:alloc=lots");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, 91);
  EXPECT_FALSE(failpoints::active());
}

// --- RLIMIT_AS support gate ---

TEST(RlimitSupport, MatchesTheSanitizerBuildConfiguration) {
  // ASan/UBSan builds reserve terabytes of shadow address space; an
  // RLIMIT_AS cap would kill every cell at startup, so the runner must
  // report the cap unusable there and usable everywhere else.
#if defined(__SANITIZE_ADDRESS__)
  EXPECT_FALSE(fuzz::rlimit_as_supported());
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  EXPECT_FALSE(fuzz::rlimit_as_supported());
#else
  EXPECT_TRUE(fuzz::rlimit_as_supported());
#endif
#else
  EXPECT_TRUE(fuzz::rlimit_as_supported());
#endif
}

// --- Model fault wire format ---

TEST(ModelFaultRecord, RoundTripsThroughTheWireFormat) {
  modelfault::ModelFault fault;
  fault.layer = modelfault::Layer::kEptWalk;
  fault.code = 42;
  fault.message = "EPT walk reached an unmapped PML4 slot";

  ByteWriter w;
  modelfault::serialize_model_fault(fault, w);
  ByteReader r(w.data());
  auto parsed = modelfault::deserialize_model_fault(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(parsed.value().layer, fault.layer);
  EXPECT_EQ(parsed.value().code, fault.code);
  EXPECT_EQ(parsed.value().message, fault.message);
  EXPECT_NE(parsed.value().describe().find("ept_walk"), std::string::npos);
}

TEST(ModelFaultRecord, RejectsTruncationAndBadLayers) {
  modelfault::ModelFault fault;
  fault.message = "x";
  ByteWriter w;
  modelfault::serialize_model_fault(fault, w);

  auto bytes = w.data();
  bytes.pop_back();
  ByteReader truncated(bytes);
  auto short_parse = modelfault::deserialize_model_fault(truncated);
  ASSERT_FALSE(short_parse.ok());
  EXPECT_EQ(short_parse.error().code, 88);

  ByteWriter w2;
  w2.u8(modelfault::kNumLayers);  // first invalid layer value
  w2.u32(0);
  w2.str("");
  ByteReader r2(w2.data());
  auto bad_parse = modelfault::deserialize_model_fault(r2);
  ASSERT_FALSE(bad_parse.ok());
  EXPECT_EQ(bad_parse.error().code, 89);
}

// --- Re-probe record wire format ---

TEST(ReprobeRecord, RoundTripsThroughTheWireFormat) {
  ReprobeRecord record;
  record.index = 11;
  record.round = 2;
  record.outcome = kReprobeRepoisoned;
  record.fault_kind =
      static_cast<std::uint8_t>(HarnessFault::Kind::kResourceExhausted);
  record.detail = failpoints::kResourceExhaustedExit;
  record.attempts_total = 5;
  record.message = "harness exceeded its memory resource limit (exit 9)";

  ByteWriter w;
  serialize_reprobe(record, w);
  ByteReader r(w.data());
  auto parsed = deserialize_reprobe(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(parsed.value().index, record.index);
  EXPECT_EQ(parsed.value().round, record.round);
  EXPECT_EQ(parsed.value().outcome, record.outcome);
  EXPECT_EQ(parsed.value().fault_kind, record.fault_kind);
  EXPECT_EQ(parsed.value().detail, record.detail);
  EXPECT_EQ(parsed.value().attempts_total, record.attempts_total);
  EXPECT_EQ(parsed.value().message, record.message);
}

TEST(ReprobeRecord, RejectsTruncationAndBadFields) {
  ReprobeRecord record;
  record.outcome = kReprobeRehabilitated;
  record.message = "x";
  ByteWriter w;
  serialize_reprobe(record, w);

  auto bytes = w.data();
  bytes.pop_back();
  ByteReader truncated(bytes);
  auto short_parse = deserialize_reprobe(truncated);
  ASSERT_FALSE(short_parse.ok());
  EXPECT_EQ(short_parse.error().code, 86);

  ReprobeRecord bad_outcome = record;
  bad_outcome.outcome = 7;
  ByteWriter w2;
  serialize_reprobe(bad_outcome, w2);
  ByteReader r2(w2.data());
  auto bad_parse = deserialize_reprobe(r2);
  ASSERT_FALSE(bad_parse.ok());
  EXPECT_EQ(bad_parse.error().code, 87);

  ReprobeRecord bad_kind = record;
  bad_kind.fault_kind = 200;
  ByteWriter w3;
  serialize_reprobe(bad_kind, w3);
  ByteReader r3(w3.data());
  auto kind_parse = deserialize_reprobe(r3);
  ASSERT_FALSE(kind_parse.ok());
  EXPECT_EQ(kind_parse.error().code, 87);
}

// --- Journal version 5 gating ---

TEST(CampaignCheckpoint, ReprobeJournalsAreVersionGated) {
  const auto dir = scratch_dir("ckpt-v5-gate");
  const std::string v4 = (dir / "v4.ckpt").string();
  const std::string v5 = (dir / "v5.ckpt").string();

  // A re-probe campaign writes v5; a plain fault-contained writer must
  // refuse it, and vice versa, both with the version error.
  ASSERT_TRUE(CampaignCheckpoint::open(v4, 0xF00D, false, true).ok());
  const auto v4_as_v5 = CampaignCheckpoint::open(v4, 0xF00D, false, true, true);
  ASSERT_FALSE(v4_as_v5.ok());
  EXPECT_EQ(v4_as_v5.error().code, 84);

  ASSERT_TRUE(CampaignCheckpoint::open(v5, 0xF00D, false, true, true).ok());
  const auto v5_as_v4 = CampaignCheckpoint::open(v5, 0xF00D, false, true);
  ASSERT_FALSE(v5_as_v4.ok());
  EXPECT_EQ(v5_as_v4.error().code, 84);

  // Observers accept v5 whatever their own mode — the reducer must not
  // re-declare whether a shard ran with --reprobe.
  EXPECT_TRUE(CampaignCheckpoint::open_readonly(v5, 0xF00D).ok());
  EXPECT_TRUE(CampaignCheckpoint::open_readonly(v5, 0xF00D, true).ok());
}

TEST(CampaignCheckpoint, ReprobeRecordsSurviveReopen) {
  const auto dir = scratch_dir("ckpt-reprobe-reopen");
  const std::string path = (dir / "campaign.ckpt").string();

  ReprobeRecord record;
  record.index = 4;
  record.round = 1;
  record.outcome = kReprobeRepoisoned;
  record.fault_kind = static_cast<std::uint8_t>(HarnessFault::Kind::kSignal);
  record.detail = SIGKILL;
  record.attempts_total = 3;
  record.message = "harness killed by signal 9";
  {
    auto ckpt = CampaignCheckpoint::open(path, 0xBEEF, false, true, true);
    ASSERT_TRUE(ckpt.ok());
    ASSERT_TRUE(ckpt.value().append_reprobe(record).ok());
  }
  auto reopened = CampaignCheckpoint::open(path, 0xBEEF, false, true, true);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value().reprobes().size(), 1u);
  EXPECT_EQ(reopened.value().reprobes()[0].index, 4u);
  EXPECT_EQ(reopened.value().reprobes()[0].attempts_total, 3u);
  EXPECT_EQ(reopened.value().reprobes()[0].message, record.message);
}

// --- Per-cell resource limits ---

TEST(ResourceLimits, MemoryBombIsKilledByRlimitAndQuarantined) {
  if (!fuzz::rlimit_as_supported()) {
    GTEST_SKIP() << "RLIMIT_AS unusable under a sanitizer build";
  }
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 2;
  const auto reference = CampaignRunner(small_config(1)).run(grid);

  // The victim cell allocates 8 GiB under a 2 GiB address-space cap:
  // the kernel (or the new-handler) kills the child, the fault is
  // classified as resource exhaustion, and the shard itself survives.
  const FailpointGuard guard("cell_exec:alloc=8589934592:cell=" +
                             std::to_string(victim));
  CampaignConfig config = sandbox_config(1);
  config.rlimit_as_mb = 2048;
  const auto result = CampaignRunner(config).run(grid);

  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.harness_faults, 2u);  // initial attempt + one retry
  EXPECT_EQ(result.rlimit_kills, 2u);
  ASSERT_EQ(result.poisoned_cells.size(), 1u);
  EXPECT_EQ(result.poisoned_cells[0].index, victim);
  EXPECT_EQ(result.poisoned_cells[0].fault.kind,
            HarnessFault::Kind::kResourceExhausted);
  EXPECT_EQ(result.poisoned_cells[0].fault.detail,
            failpoints::kResourceExhaustedExit);
  EXPECT_NE(result.poisoned_cells[0].fault.describe().find("resource limit"),
            std::string::npos);
  // Every other cell is byte-identical to the fault-free run.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i == victim) continue;
    EXPECT_EQ(result.results[i].ran, reference.results[i].ran) << i;
  }
}

TEST(ResourceLimits, GenerousLimitsKeepCleanCellsByteIdentical) {
  const auto grid = small_grid();
  const auto reference = CampaignRunner(small_config(1)).run(grid);
  ASSERT_TRUE(reference.complete);

  // Limits generous enough to never fire must be invisible: identical
  // bytes, zero faults — the knobs sit outside the fingerprint.
  CampaignConfig config = sandbox_config(1);
  config.rlimit_cpu_seconds = 300;
  if (fuzz::rlimit_as_supported()) config.rlimit_as_mb = 8192;
  config.rlimit_core_mb = 0;
  const auto limited = CampaignRunner(config).run(grid);
  ASSERT_TRUE(limited.complete);
  EXPECT_EQ(limited.harness_faults, 0u);
  EXPECT_EQ(limited.rlimit_kills, 0u);
  EXPECT_EQ(canonical_result_bytes(limited),
            canonical_result_bytes(reference));
}

// --- Model-layer fault injection ---

TEST(ModelFaults, RoundTripOverTheSandboxPipeQuarantinesTheCell) {
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 3;

  // A model-site failpoint fires inside the forked child on every
  // attempt; the structured fault must arrive in the parent with layer
  // and site intact, classified apart from harness deaths.
  const FailpointGuard guard("model_vmentry:modelfault:cell=" +
                             std::to_string(victim));
  const auto result = CampaignRunner(sandbox_config(1)).run(grid);

  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.harness_faults, 2u);
  EXPECT_EQ(result.model_faults, 2u);
  EXPECT_EQ(result.rlimit_kills, 0u);
  ASSERT_EQ(result.poisoned_cells.size(), 1u);
  EXPECT_EQ(result.poisoned_cells[0].index, victim);
  const HarnessFault& fault = result.poisoned_cells[0].fault;
  EXPECT_EQ(fault.kind, HarnessFault::Kind::kModelFault);
  EXPECT_NE(fault.describe().find("vmentry"), std::string::npos);
  EXPECT_NE(fault.describe().find("model_vmentry"), std::string::npos);
}

// --- Poison-aware re-probe scheduling ---

TEST(Reprobe, TransientPoisonIsRehabilitatedToIdenticalBytes) {
  const auto dir = scratch_dir("reprobe-rehab");
  const std::string journal = (dir / "campaign.ckpt").string();
  const std::string clean = (dir / "clean.ckpt").string();
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 2;
  const auto reference = CampaignRunner(small_config(1)).run(grid);
  ASSERT_TRUE(reference.complete);

  CampaignConfig config = sandbox_config(1);
  config.checkpoint_path = journal;
  config.reprobe_poisoned = true;

  // Both quarantine attempts are killed; the count-limited rule is then
  // spent, so the end-of-run re-probe's canary succeeds, the cell is
  // re-run at full fidelity, and the campaign completes byte-identical
  // to a fault-free run.
  {
    const FailpointGuard guard("cell_exec:signal=KILL:cell=" +
                               std::to_string(victim) + ":count=2");
    const auto result = CampaignRunner(config).run(grid);
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.poisoned_cells.empty());
    EXPECT_EQ(result.harness_faults, 2u);
    EXPECT_EQ(result.cells_reprobed, 1u);
    EXPECT_EQ(result.cells_rehabilitated, 1u);
    EXPECT_EQ(canonical_result_bytes(result),
              canonical_result_bytes(reference));
  }

  // Kill/resume determinism: a resumed run adopts the rehabilitated
  // cell from the journal like any clean cell.
  const auto resumed = CampaignRunner(config).run(grid);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.cells_resumed, grid.size());
  EXPECT_EQ(resumed.harness_faults, 0u);
  EXPECT_EQ(canonical_result_bytes(resumed),
            canonical_result_bytes(reference));

  // Reduce determinism: the rehabilitated journal alone, and alongside
  // an independent clean shard (exercising duplicate-cell checksums
  // against the full-fidelity re-run), both reduce byte-identical.
  auto report = reduce_journals({journal}, grid, config);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report.value().result.complete);
  EXPECT_EQ(report.value().reprobe_records, 1u);
  EXPECT_EQ(report.value().rehabilitated, 1u);
  EXPECT_TRUE(report.value().poisoned.empty());
  EXPECT_EQ(canonical_result_bytes(report.value().result),
            canonical_result_bytes(reference));

  CampaignConfig clean_config = sandbox_config(1);
  clean_config.checkpoint_path = clean;
  const auto clean_run = CampaignRunner(clean_config).run(grid);
  ASSERT_TRUE(clean_run.complete);
  auto merged = reduce_journals({journal, clean}, grid, config);
  ASSERT_TRUE(merged.ok()) << merged.error().message;
  EXPECT_TRUE(merged.value().result.complete);
  EXPECT_EQ(merged.value().duplicate_cells, grid.size());
  EXPECT_EQ(canonical_result_bytes(merged.value().result),
            canonical_result_bytes(reference));
}

TEST(Reprobe, PersistentPoisonIsRepoisonedWithAttemptHistory) {
  const auto dir = scratch_dir("reprobe-repoison");
  const std::string journal = (dir / "campaign.ckpt").string();
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 2;
  const auto reference = CampaignRunner(small_config(1)).run(grid);

  CampaignConfig config = sandbox_config(1);
  config.checkpoint_path = journal;
  config.reprobe_poisoned = true;

  // The fault never clears: quarantine (2 attempts), then a failed
  // re-probe canary re-poisons with the cumulative attempt count.
  {
    const FailpointGuard guard("cell_exec:signal=KILL:cell=" +
                               std::to_string(victim));
    const auto result = CampaignRunner(config).run(grid);
    EXPECT_FALSE(result.complete);
    EXPECT_EQ(result.cells_reprobed, 1u);
    EXPECT_EQ(result.cells_rehabilitated, 0u);
    ASSERT_EQ(result.poisoned_cells.size(), 1u);
    EXPECT_EQ(result.poisoned_cells[0].index, victim);
    EXPECT_EQ(result.poisoned_cells[0].attempts, 3u);

    // A resumed run under the same fault re-probes again (round 2) and
    // extends the journaled history.
    const auto again = CampaignRunner(config).run(grid);
    EXPECT_FALSE(again.complete);
    EXPECT_EQ(again.cells_reprobed, 1u);
    ASSERT_EQ(again.poisoned_cells.size(), 1u);
    EXPECT_EQ(again.poisoned_cells[0].attempts, 4u);

    // The reducer folds the re-probe history into the surviving
    // quarantine instead of resurrecting the original attempt count.
    auto report = reduce_journals({journal}, grid, config);
    ASSERT_TRUE(report.ok()) << report.error().message;
    EXPECT_EQ(report.value().reprobe_records, 2u);
    EXPECT_EQ(report.value().rehabilitated, 0u);
    ASSERT_EQ(report.value().poisoned.size(), 1u);
    EXPECT_EQ(report.value().poisoned[0].attempts, 4u);
  }

  // Once the fault clears, the next resume's re-probe rehabilitates and
  // the campaign converges on the fault-free bytes.
  const auto healed = CampaignRunner(config).run(grid);
  EXPECT_TRUE(healed.complete);
  EXPECT_EQ(healed.cells_reprobed, 1u);
  EXPECT_EQ(healed.cells_rehabilitated, 1u);
  EXPECT_TRUE(healed.poisoned_cells.empty());
  EXPECT_EQ(canonical_result_bytes(healed),
            canonical_result_bytes(reference));
}

}  // namespace
}  // namespace iris::campaign
