// Integration tests for the heart of the paper: record a workload on the
// test VM, replay it on the dummy VM, and verify the paper's accuracy
// and state-dependency claims end to end.
#include <gtest/gtest.h>

#include "guest/workload.h"
#include "hv/hypervisor.h"
#include "iris/analysis.h"
#include "iris/recorder.h"
#include "iris/replayer.h"
#include "vtx/entry_checks.h"

namespace iris {
namespace {

using guest::GuestProgram;
using guest::Workload;

class RecordReplayTest : public ::testing::Test {
 protected:
  RecordReplayTest() : hv_(/*noise_seed=*/11, /*async_noise_prob=*/0.0) {
    test_vm_ = &hv_.create_domain(hv::DomainRole::kTest);
    dummy_vm_ = &hv_.create_domain(hv::DomainRole::kDummy);
    EXPECT_TRUE(hv_.launch(*test_vm_));
    EXPECT_TRUE(hv_.launch(*dummy_vm_));
  }

  VmBehavior record(Workload w, std::uint64_t n, std::uint64_t seed = 21) {
    GuestProgram program(w, seed, n);
    return record_workload(hv_, *test_vm_, test_vm_->vcpu(), program, n);
  }

  hv::Hypervisor hv_;
  hv::Domain* test_vm_ = nullptr;
  hv::Domain* dummy_vm_ = nullptr;
};

TEST_F(RecordReplayTest, RecorderCapturesEveryExit) {
  const auto behavior = record(Workload::kCpuBound, 200);
  ASSERT_EQ(behavior.size(), 200u);
  for (const auto& rec : behavior) {
    EXPECT_EQ(rec.seed.gpr_count(), static_cast<std::size_t>(vcpu::kNumGprs));
    EXPECT_GE(rec.seed.vmcs_count(), 2u);  // at least reason + RIP
    EXPECT_GT(rec.metrics.coverage.loc, 0u);
    EXPECT_GT(rec.metrics.cycles, 0u);
  }
}

TEST_F(RecordReplayTest, SeedsContainDispatchReads) {
  const auto behavior = record(Workload::kCpuBound, 50);
  for (const auto& rec : behavior) {
    // The dispatcher reads the exit reason; validate reads GUEST_RIP.
    EXPECT_TRUE(rec.seed.find_field(vtx::VmcsField::kVmExitReason).has_value());
    EXPECT_TRUE(rec.seed.find_field(vtx::VmcsField::kGuestRip).has_value());
    // And the recorded reason field matches the qualifying reason.
    EXPECT_EQ(rec.seed.find_field(vtx::VmcsField::kVmExitReason).value_or(0) & 0xFFFF,
              static_cast<std::uint64_t>(rec.seed.reason));
  }
}

TEST_F(RecordReplayTest, IrisCoverageIsFilteredFromSeeds) {
  const auto behavior = record(Workload::kIdle, 50);
  for (const auto& rec : behavior) {
    for (const auto key : rec.metrics.coverage.blocks) {
      EXPECT_NE(hv::block_component(key), hv::Component::kIris);
    }
  }
}

TEST_F(RecordReplayTest, SeedSizeWithinPaperBudget) {
  const auto behavior = record(Workload::kOsBoot, 300);
  for (const auto& rec : behavior) {
    EXPECT_LE(rec.seed.vmcs_count(), 32u);           // the recorder's cap
    EXPECT_LE(rec.seed.items.size() * kSeedItemBytes, 470u);  // §VI-D
  }
}

TEST_F(RecordReplayTest, ReplayDispatchesRecordedReasons) {
  const auto behavior = record(Workload::kOsBoot, 300);
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  const auto outcomes = replayer.submit_behavior(behavior);
  ASSERT_EQ(outcomes.size(), behavior.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].dispatched_reason, behavior[i].seed.reason) << i;
    EXPECT_TRUE(outcomes[i].entered) << i;
    // The preemption-timer loop stays armed throughout.
    EXPECT_TRUE(outcomes[i].preemption_timer_fired) << i;
  }
}

TEST_F(RecordReplayTest, ReplayNeedsNoGuestWorkload) {
  // The dummy VM's guest executes nothing: replay time is orders of
  // magnitude below the recorded guest time (Fig 9's IDLE case).
  const auto behavior = record(Workload::kIdle, 200);
  std::uint64_t real_cycles = 0;
  for (const auto& rec : behavior) real_cycles += rec.metrics.cycles;
  // Recorded per-exit cycles exclude guest gaps; add them back the way
  // the efficiency bench does — here just compare handling-only replay.
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  const auto t0 = hv_.clock().rdtsc();
  replayer.submit_behavior(behavior);
  const auto replay_cycles = hv_.clock().rdtsc() - t0;
  EXPECT_LT(replay_cycles / 200, hv_.costs().guest_idle_gap / 10);
  (void)real_cycles;
}

TEST_F(RecordReplayTest, ReplayedCoverageFitsRecorded) {
  // Fig 6: coverage fit between 92% and 100%.
  const auto behavior = record(Workload::kOsBoot, 500);
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  Recorder recorder(hv_);
  recorder.attach();
  for (const auto& rec : behavior) {
    recorder.finish_exit(replayer.submit(rec.seed));
  }
  recorder.detach();
  const auto replayed = recorder.take_trace();
  ASSERT_EQ(replayed.size(), behavior.size());

  const auto report = analyze_accuracy(hv_.coverage(), behavior, replayed);
  EXPECT_GE(report.coverage_fit_pct, 85.0);
  EXPECT_LE(report.coverage_fit_pct, 102.0);
  EXPECT_GE(report.vmwrite_fit_pct, 90.0);
}

TEST_F(RecordReplayTest, GprsInjectedIntoHypervisorStructs) {
  auto behavior = record(Workload::kCpuBound, 5);
  ASSERT_FALSE(behavior.empty());
  // Tag a recognizable GPR value into the first seed.
  for (auto& item : behavior[0].seed.items) {
    if (item.is_gpr() && item.gpr() == vcpu::Gpr::kR13) item.value = 0xC0FFEE;
  }
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  replayer.submit(behavior[0].seed);
  // The handler saw (and entry restored) the injected GPR.
  EXPECT_EQ(dummy_vm_->vcpu().regs.read(vcpu::Gpr::kR13), 0xC0FFEEu);
}

TEST_F(RecordReplayTest, ReadOnlyFieldsInterposedNotWritten) {
  const auto behavior = record(Workload::kCpuBound, 5);
  ASSERT_FALSE(behavior.empty());
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  replayer.submit(behavior[0].seed);
  // The stored (hardware) exit reason remains the preemption timer; only
  // the vmread-visible value was interposed.
  EXPECT_EQ(dummy_vm_->vcpu().vmcs.hw_read(vtx::VmcsField::kVmExitReason) & 0xFFFF,
            static_cast<std::uint64_t>(vtx::ExitReason::kPreemptionTimer));
}

TEST_F(RecordReplayTest, WritableFieldsAreWrittenIntoDummyVmcs) {
  const auto behavior = record(Workload::kCpuBound, 5);
  ASSERT_FALSE(behavior.empty());
  const auto recorded_rip =
      behavior[0].seed.find_field(vtx::VmcsField::kGuestRip).value_or(0);
  ASSERT_NE(recorded_rip, 0u);
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  replayer.submit(behavior[0].seed);
  // GUEST_RIP was written into the dummy's VMCS and advanced by the
  // handler (RDTSC is 2 bytes).
  const auto rip = dummy_vm_->vcpu().vmcs.hw_read(vtx::VmcsField::kGuestRip);
  EXPECT_GE(rip, recorded_rip);
  EXPECT_LE(rip, recorded_rip + 4);
}

// --- The paper's §VI-B state-dependency experiment. ---

TEST_F(RecordReplayTest, CpuBoundReplayFromUnbootedStateCrashes) {
  // Record a booted guest's CPU-bound trace...
  GuestProgram boot(Workload::kOsBoot, 21, 300);
  guest::run_workload(hv_, *test_vm_, test_vm_->vcpu(), boot, 300);
  const auto cpu = record(Workload::kCpuBound, 100);
  // ...and replay it on a fresh dummy VM in real mode (Mode1).
  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  const auto outcomes = replayer.submit_behavior(cpu);
  ASSERT_LT(outcomes.size(), cpu.size());  // aborted early
  EXPECT_EQ(outcomes.back().failure, hv::FailureKind::kVmCrash);
  EXPECT_TRUE(hv_.log().contains("bad RIP for mode 0"));
}

TEST_F(RecordReplayTest, CpuBoundReplayAfterBootReplayCompletes) {
  GuestProgram boot_prog(Workload::kOsBoot, 21, 300);
  Recorder boot_rec(hv_);
  boot_rec.attach();
  for (int i = 0; i < 300; ++i) {
    const auto exit = boot_prog.next(hv_, *test_vm_, test_vm_->vcpu());
    boot_rec.finish_exit(hv_.process_exit(*test_vm_, test_vm_->vcpu(), exit));
  }
  boot_rec.detach();
  const auto boot = boot_rec.take_trace();
  const auto cpu = record(Workload::kCpuBound, 100);

  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  // First replay the boot seeds: the dummy VM walks to a booted state.
  const auto boot_outcomes = replayer.submit_behavior(boot);
  ASSERT_EQ(boot_outcomes.size(), boot.size());
  EXPECT_NE(dummy_vm_->vcpu().mode_cache, vcpu::CpuMode::kMode1);
  // Now the CPU-bound seeds complete.
  const auto cpu_outcomes = replayer.submit_behavior(cpu);
  EXPECT_EQ(cpu_outcomes.size(), cpu.size());
  EXPECT_EQ(cpu_outcomes.back().failure, hv::FailureKind::kNone);
}

TEST_F(RecordReplayTest, HandlerLoopAblationTripsWatchdog) {
  // The §IV-B rejected design: loop in root mode without VM entries.
  const auto behavior = record(Workload::kCpuBound, 100);
  hv_.set_hang_threshold(64);
  Replayer::Config config;
  config.use_preemption_timer = false;
  Replayer replayer(hv_, *dummy_vm_, config);
  ASSERT_TRUE(replayer.arm());
  const auto outcomes = replayer.submit_behavior(behavior);
  ASSERT_FALSE(outcomes.empty());
  EXPECT_EQ(outcomes.back().failure, hv::FailureKind::kHypervisorHang);
}

TEST_F(RecordReplayTest, RecorderOverheadIsSmall) {
  // Fig 10: recording adds ~1% per exit.
  GuestProgram program(Workload::kCpuBound, 5, 200);
  Recorder recorder(hv_);
  recorder.attach();
  std::uint64_t handling = 0;
  for (int i = 0; i < 200; ++i) {
    const auto exit = program.next(hv_, *test_vm_, test_vm_->vcpu());
    const auto outcome = hv_.process_exit(*test_vm_, test_vm_->vcpu(), exit);
    handling += outcome.cycles;
    recorder.finish_exit(outcome);
  }
  recorder.detach();
  const double overhead_pct =
      100.0 * static_cast<double>(recorder.overhead_cycles()) /
      static_cast<double>(handling);
  EXPECT_LT(overhead_pct, 5.0);
  EXPECT_GT(overhead_pct, 0.1);
}

TEST_F(RecordReplayTest, CraftedSeedSubmission) {
  // §IV-B: manually crafted seeds are first-class citizens.
  VmSeed crafted;
  crafted.reason = vtx::ExitReason::kCpuid;
  for (int i = 0; i < vcpu::kNumGprs; ++i) {
    crafted.items.push_back(
        SeedItem{SeedItemKind::kGpr, static_cast<std::uint8_t>(i), 0});
  }
  crafted.items[0].value = 0x40000000;  // RAX: the Xen CPUID leaf
  crafted.items.push_back(SeedItem{
      SeedItemKind::kVmcsField, *vtx::compact_index(vtx::VmcsField::kVmExitReason),
      static_cast<std::uint64_t>(vtx::ExitReason::kCpuid)});
  crafted.items.push_back(SeedItem{
      SeedItemKind::kVmcsField,
      *vtx::compact_index(vtx::VmcsField::kVmExitInstructionLen), 2});

  Replayer replayer(hv_, *dummy_vm_);
  ASSERT_TRUE(replayer.arm());
  const auto outcome = replayer.submit(crafted);
  EXPECT_TRUE(outcome.entered);
  EXPECT_EQ(outcome.dispatched_reason, vtx::ExitReason::kCpuid);
  // The CPUID handler answered the Xen leaf into the (injected) GPRs.
  EXPECT_EQ(dummy_vm_->vcpu().regs.read(vcpu::Gpr::kRbx), 0x566E6558u);  // "XenV"
}

}  // namespace
}  // namespace iris
