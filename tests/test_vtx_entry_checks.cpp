// Unit tests for the SDM 26.3 guest-state entry checks — the mechanism
// that keeps replayed/mutated VM seeds semantically valid (paper §IV-B).
#include <gtest/gtest.h>

#include "vtx/entry_checks.h"
#include "vtx/vmcs.h"

namespace iris::vtx {
namespace {

/// A guest state that passes every modeled check.
Vmcs valid_vmcs() {
  Vmcs vmcs;
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Ne | kCr0Et);
  vmcs.hw_write(VmcsField::kGuestRflags, 0x2);
  vmcs.hw_write(VmcsField::kVmcsLinkPointer, ~0ULL);
  vmcs.hw_write(VmcsField::kGuestCsArBytes, 0x9B);
  vmcs.hw_write(VmcsField::kGuestTrArBytes, 0x8B);
  vmcs.hw_write(VmcsField::kGuestSsArBytes, 0x93);
  vmcs.hw_write(VmcsField::kGuestActivityState, kActivityActive);
  return vmcs;
}

bool has_rule(const std::vector<EntryCheckViolation>& v, std::string_view needle) {
  for (const auto& viol : v) {
    if (viol.rule.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(EntryChecks, ValidStatePasses) {
  const auto vmcs = valid_vmcs();
  EXPECT_TRUE(check_guest_state(vmcs).empty());
}

TEST(EntryChecks, PagingRequiresProtectedMode) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pg | kCr0Ne | kCr0Et);  // PG without PE
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "CR0.PG=1 requires CR0.PE=1"));
}

TEST(EntryChecks, NotWriteThroughRequiresCacheDisable) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Ne | kCr0Et | kCr0Nw);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "CR0.NW=1 requires CR0.CD=1"));
}

TEST(EntryChecks, NeIsFixedToOne) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Et);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "CR0.NE fixed"));
}

TEST(EntryChecks, Cr4ReservedBits) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr4, 1ULL << 11);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "CR4 reserved"));
}

TEST(EntryChecks, LmaRequiresPaging) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestIa32Efer, kEferLma);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "EFER.LMA=1 requires CR0.PG=1"));
}

TEST(EntryChecks, LongModeRequiresPae) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Pg | kCr0Ne | kCr0Et);
  vmcs.hw_write(VmcsField::kGuestIa32Efer, kEferLma | kEferLme);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "requires CR4.PAE"));
}

TEST(EntryChecks, RflagsReservedBitOne) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRflags, 0x0);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "RFLAGS bit 1"));
}

TEST(EntryChecks, RflagsMustBeZeroBits) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRflags, 0x2 | (1ULL << 3));
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "RFLAGS reserved"));
}

TEST(EntryChecks, Vm86FlagInvalidInLongMode) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Pg | kCr0Ne | kCr0Et);
  vmcs.hw_write(VmcsField::kGuestCr4, kCr4Pae);
  vmcs.hw_write(VmcsField::kGuestIa32Efer, kEferLma | kEferLme);
  vmcs.hw_write(VmcsField::kGuestRflags, 0x2 | kRflagsVm);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "RFLAGS.VM=1 invalid"));
}

TEST(EntryChecks, EventInjectionRequiresInterruptsEnabled) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kVmEntryIntrInfoField, (1ULL << 31) | 0x30);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "requires RFLAGS.IF=1"));
  vmcs.hw_write(VmcsField::kGuestRflags, 0x2 | kRflagsIf);
  EXPECT_TRUE(check_guest_state(vmcs).empty());
}

TEST(EntryChecks, RipAbove32BitsOutsideLongMode) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRip, 0x1'00000000ULL);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "RIP has bits above 31"));
}

TEST(EntryChecks, NonCanonicalRipInLongMode) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Pg | kCr0Ne | kCr0Et);
  vmcs.hw_write(VmcsField::kGuestCr4, kCr4Pae);
  vmcs.hw_write(VmcsField::kGuestIa32Efer, kEferLma | kEferLme);
  vmcs.hw_write(VmcsField::kGuestCsArBytes, 0x9B | (1ULL << 13));  // L bit
  vmcs.hw_write(VmcsField::kGuestRip, 0x8000'00000000ULL);  // non-canonical
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "RIP must be canonical"));
}

TEST(EntryChecks, CsMustBeCodeSegment) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCsArBytes, 0x93);  // data type
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "CS must be an accessed code"));
}

TEST(EntryChecks, CsMustBePresent) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCsArBytes, 0x1B);  // P=0
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "CS must be present"));
}

TEST(EntryChecks, UnusableCsSkipsChecks) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCsArBytes, 1ULL << 16);  // unusable
  EXPECT_FALSE(has_rule(check_guest_state(vmcs), "CS must"));
}

TEST(EntryChecks, TrMustBeBusyTss) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestTrArBytes, 0x89);  // available TSS, not busy
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "TR must be a busy TSS"));
}

TEST(EntryChecks, TrTiFlagMustBeZero) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestTrSelector, 0x4C);  // TI set
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "TR.TI"));
}

TEST(EntryChecks, SsRplMustMatchCsRpl) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCsSelector, 0x08);  // RPL 0
  vmcs.hw_write(VmcsField::kGuestSsSelector, 0x13);  // RPL 3
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "SS.RPL"));
}

TEST(EntryChecks, RealModeSkipsSegmentChecks) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestCr0, kCr0Ne | kCr0Et);  // PE=0
  vmcs.hw_write(VmcsField::kGuestCsArBytes, 0x93);
  vmcs.hw_write(VmcsField::kGuestTrArBytes, 0x82);
  EXPECT_TRUE(check_guest_state(vmcs).empty());
}

TEST(EntryChecks, DescriptorTableBasesMustBeCanonical) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestGdtrBase, 0x8000'00000000ULL);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "GDTR base"));
  vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestIdtrBase, 0x8000'00000000ULL);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "IDTR base"));
}

TEST(EntryChecks, ActivityStateRange) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestActivityState, 7);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "activity state"));
  vmcs.hw_write(VmcsField::kGuestActivityState, kActivityHlt);
  EXPECT_TRUE(check_guest_state(vmcs).empty());
}

TEST(EntryChecks, InterruptibilityReservedBits) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestInterruptibility, 0x100);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "interruptibility reserved"));
}

TEST(EntryChecks, StiAndMovSsExclusive) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRflags, 0x2 | kRflagsIf);
  vmcs.hw_write(VmcsField::kGuestInterruptibility,
                kIntrBlockingBySti | kIntrBlockingByMovSs);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "cannot both be set"));
}

TEST(EntryChecks, StiBlockingRequiresIf) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestInterruptibility, kIntrBlockingBySti);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "STI blocking requires"));
}

TEST(EntryChecks, HltActivityIncompatibleWithBlocking) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRflags, 0x2 | kRflagsIf);
  vmcs.hw_write(VmcsField::kGuestActivityState, kActivityHlt);
  vmcs.hw_write(VmcsField::kGuestInterruptibility, kIntrBlockingBySti);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "HLT activity incompatible"));
}

TEST(EntryChecks, VmcsLinkPointerMustBeAllOnes) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kVmcsLinkPointer, 0x1000);
  EXPECT_TRUE(has_rule(check_guest_state(vmcs), "link pointer"));
}

TEST(EntryChecks, DescribeRendersViolations) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRflags, 0x0);
  const auto text = describe(check_guest_state(vmcs));
  EXPECT_NE(text.find("GUEST_RFLAGS"), std::string::npos);
  EXPECT_NE(text.find("check(s) failed"), std::string::npos);
}

TEST(EntryChecks, MultipleViolationsAccumulate) {
  auto vmcs = valid_vmcs();
  vmcs.hw_write(VmcsField::kGuestRflags, 0x0);
  vmcs.hw_write(VmcsField::kVmcsLinkPointer, 0);
  EXPECT_GE(check_guest_state(vmcs).size(), 2u);
}

}  // namespace
}  // namespace iris::vtx
