// Telemetry-layer tests: the sharded metrics registry (exact counts
// under thread churn), the JSONL trace stream (round-trip, torn tails,
// corrupt lines), the flat-JSON reader backing status files — and the
// property the whole layer is built around: enabling telemetry leaves
// campaign::canonical_result_bytes bit-identical, across worker counts
// and with the cell sandbox on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/monitor.h"
#include "fuzz/campaign.h"
#include "support/telemetry.h"

namespace iris::support {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void write_text(const fs::path& path, const std::string& text) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
}

// --- MetricsRegistry ---

TEST(MetricsRegistry, RegistrationIsIdempotentPerName) {
  MetricsRegistry reg;
  const MetricId a = reg.counter_id("cells");
  EXPECT_EQ(a, reg.counter_id("cells"));
  EXPECT_NE(a, reg.counter_id("mutants"));
  // Counters, gauges and histograms live in separate id spaces: the
  // same name may appear in each.
  EXPECT_EQ(reg.gauge_id("cells"), reg.gauge_id("cells"));
  EXPECT_EQ(reg.histogram_id("cells"), reg.histogram_id("cells"));
}

TEST(MetricsRegistry, ThreadedAddsMergeExactlyAcrossRetiredShards) {
  MetricsRegistry reg;
  const MetricId hits = reg.counter_id("hits");
  const MetricId hist = reg.histogram_id("lat", std::vector<double>{10.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 25000;

  // Two waves of threads: the first wave's shards are retired (threads
  // joined) before the second wave starts, so the snapshot must merge
  // retired accumulators with live shards and lose nothing.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          reg.add(hits);
          reg.observe(hist, 5.0);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("hits"), 2 * kThreads * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2 * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum,
                   5.0 * static_cast<double>(2 * kThreads * kPerThread));
  // All observations were 5.0 < bound 10.0: everything in bucket 0.
  ASSERT_EQ(snap.histograms[0].buckets.size(), 2u);
  EXPECT_EQ(snap.histograms[0].buckets[0], 2 * kThreads * kPerThread);
  EXPECT_EQ(snap.histograms[0].buckets[1], 0u);
}

TEST(MetricsRegistry, GaugesAreLastWriteWins) {
  MetricsRegistry reg;
  const MetricId depth = reg.gauge_id("queue.depth");
  reg.set_gauge(depth, 3.0);
  reg.set_gauge(depth, 7.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "queue.depth");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.5);
}

TEST(MetricsRegistry, HistogramBucketsSplitOnSortedBounds) {
  MetricsRegistry reg;
  // Deliberately unsorted; the registry must sort before bucketing.
  const MetricId lat =
      reg.histogram_id("lat_us", std::vector<double>{100.0, 10.0});
  for (const double v : {1.0, 9.0, 10.0, 11.0, 99.0, 100.0, 101.0, 5000.0}) {
    reg.observe(lat, v);
  }
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& h = snap.histograms[0];
  ASSERT_EQ(h.bounds, (std::vector<double>{10.0, 100.0}));
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], 3u);  // <= 10:  1, 9, 10
  EXPECT_EQ(h.buckets[1], 3u);  // <= 100: 11, 99, 100
  EXPECT_EQ(h.buckets[2], 2u);  // overflow: 101, 5000
  EXPECT_EQ(h.count, 8u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandedOutIds) {
  MetricsRegistry reg;
  const MetricId hits = reg.counter_id("hits");
  const MetricId depth = reg.gauge_id("depth");
  const MetricId lat = reg.histogram_id("lat");
  reg.add(hits, 41);
  reg.set_gauge(depth, 2.0);
  reg.observe(lat, 1.0);
  reg.reset_values();

  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("hits"), 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);

  // The old ids still address the same metrics.
  reg.add(hits);
  EXPECT_EQ(reg.counter_id("hits"), hits);
  EXPECT_EQ(reg.gauge_id("depth"), depth);
  EXPECT_EQ(reg.histogram_id("lat"), lat);
  EXPECT_EQ(reg.snapshot().counter("hits"), 1u);
}

TEST(MetricsRegistry, ExhaustedCapacityDegradesToInvalidMetricNoOps) {
  MetricsRegistry reg;
  MetricId last = kInvalidMetric;
  std::size_t registered = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    last = reg.counter_id("c" + std::to_string(i));
    if (last == kInvalidMetric) break;
    ++registered;
  }
  ASSERT_EQ(last, kInvalidMetric) << "capacity never exhausted";
  EXPECT_GE(registered, 64u);
  // Adding through the invalid id must be a silent no-op.
  reg.add(kInvalidMetric, 99);
  reg.set_gauge(kInvalidMetric, 1.0);
  reg.observe(kInvalidMetric, 1.0);
  EXPECT_EQ(reg.snapshot().counters.size(), registered);
}

// --- Trace stream ---

TEST(TraceStream, EventsRoundTripThroughJsonl) {
  const auto dir = scratch_dir("trace-roundtrip");
  const std::string path = (dir / "trace.jsonl").string();
  ASSERT_TRUE(set_trace_path(path, "0-of-2").ok());
  ASSERT_TRUE(trace_active());

  trace(std::move(TraceEvent("cell_start").num("cell", 7).num("worker", 1)));
  trace(std::move(TraceEvent("harness_fault")
                      .num("cell", 7)
                      .str("fault", "signal 11 \"segv\"\n")));
  trace(std::move(TraceEvent("cell_done").num("cell", 7).num("wall_ms", 12.5)));
  ASSERT_TRUE(set_trace_path("").ok());  // detach: flushes and disables
  EXPECT_FALSE(trace_active());

  auto file = read_trace(path);
  ASSERT_TRUE(file.ok()) << file.error().message;
  EXPECT_FALSE(file.value().torn_tail);
  EXPECT_EQ(file.value().skipped_lines, 0u);
  ASSERT_EQ(file.value().events.size(), 3u);

  const auto& events = file.value().events;
  EXPECT_EQ(events[0].event, "cell_start");
  EXPECT_EQ(events[0].num("cell"), 7.0);
  EXPECT_EQ(events[0].num("worker"), 1.0);
  // Integral values survive exactly (no ".0" drift) and seq/ts are
  // monotonic within the stream.
  EXPECT_EQ(*events[0].field("cell"), "7");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
  // The shard label is stamped into every line; escapes round-trip.
  for (const auto& event : events) {
    ASSERT_NE(event.field("shard"), nullptr);
    EXPECT_EQ(*event.field("shard"), "0-of-2");
  }
  EXPECT_EQ(*events[1].field("fault"), "signal 11 \"segv\"\n");
  EXPECT_EQ(events[2].num("wall_ms"), 12.5);
}

TEST(TraceStream, ReaderToleratesTornTailAndCountsCorruptLines) {
  const auto dir = scratch_dir("trace-torn");
  const fs::path path = dir / "trace.jsonl";
  write_text(path,
             "{\"seq\":1,\"ts_us\":10,\"event\":\"cell_start\",\"cell\":0}\n"
             "this line is not JSON at all\n"
             "{\"seq\":3,\"ts_us\":30,\"event\":\"cell_done\",\"cell\":0}\n"
             "{\"seq\":4,\"ts_us\":40,\"event\":\"cell_st");  // torn: no \n

  auto file = read_trace(path.string());
  ASSERT_TRUE(file.ok()) << file.error().message;
  EXPECT_TRUE(file.value().torn_tail);
  EXPECT_EQ(file.value().skipped_lines, 1u);
  ASSERT_EQ(file.value().events.size(), 2u);
  EXPECT_EQ(file.value().events[0].seq, 1u);
  EXPECT_EQ(file.value().events[1].seq, 3u);
  EXPECT_EQ(file.value().events[1].event, "cell_done");
}

TEST(TraceStream, MissingFileIsAnErrorValueNotACrash) {
  const auto dir = scratch_dir("trace-missing");
  EXPECT_FALSE(read_trace((dir / "nope.jsonl").string()).ok());
}

// --- FlatJson ---

TEST(FlatJson, ParsesScalarsNestedObjectsAndArrays) {
  auto parsed = FlatJson::parse(
      "{\"shard\": \"0-of-3\", \"pid\": 41, \"rate\": 1.5,\n"
      " \"finished\": 0,\n"
      " \"counters\": {\"campaign.cells_done\": 12, \"pool.resets\": 3},\n"
      " \"in_flight\": [4, 9]}");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const FlatJson& json = parsed.value();
  EXPECT_EQ(json.str("shard"), "0-of-3");
  EXPECT_EQ(json.num("pid"), 41.0);
  EXPECT_EQ(json.num("rate"), 1.5);
  // Nested children flatten as parent/child (metric names use dots).
  EXPECT_EQ(json.num("counters/campaign.cells_done"), 12.0);
  EXPECT_EQ(json.num("counters/pool.resets"), 3.0);
  ASSERT_NE(json.array("in_flight"), nullptr);
  EXPECT_EQ(*json.array("in_flight"), (std::vector<double>{4.0, 9.0}));
  EXPECT_EQ(json.find("absent"), nullptr);
  EXPECT_FALSE(json.num("shard").has_value());  // string, not a number
}

TEST(FlatJson, RejectsGarbage) {
  EXPECT_FALSE(FlatJson::parse("").ok());
  EXPECT_FALSE(FlatJson::parse("{\"key\": ").ok());
  EXPECT_FALSE(FlatJson::parse("not json").ok());
  // Booleans appear in no file this layer writes (finished is 1/0), so
  // the minimal parser rejects them rather than half-supporting them.
  EXPECT_FALSE(FlatJson::parse("{\"finished\": false}").ok());
}

// --- The determinism contract ---

fuzz::CampaignConfig base_config(std::size_t workers, bool sandbox) {
  fuzz::CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  config.sandbox_cells = sandbox;
  return config;
}

TEST(TelemetryDeterminism, ResultsBitIdenticalWithTelemetryOnOrOff) {
  const auto grid =
      fuzz::make_table1_grid({guest::Workload::kCpuBound}, 60, 7);
  const auto dir = scratch_dir("telemetry-determinism");

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const bool sandbox : {false, true}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " sandbox=" + std::to_string(sandbox));
      const auto reference = campaign::canonical_result_bytes(
          fuzz::CampaignRunner(base_config(workers, sandbox)).run(grid));

      // Same campaign with every telemetry channel lit: status file on
      // an aggressive cadence, progress callback, trace stream.
      auto instrumented = base_config(workers, sandbox);
      const std::string tag =
          std::to_string(workers) + (sandbox ? "s" : "p");
      instrumented.status_path = (dir / ("status-" + tag + ".json")).string();
      instrumented.status_interval_seconds = 0.0;
      instrumented.shard_label = "probe-" + tag;
      std::atomic<std::size_t> callbacks{0};
      instrumented.on_progress = [&](const campaign::ShardStatus&) {
        callbacks.fetch_add(1, std::memory_order_relaxed);
      };
      ASSERT_TRUE(
          set_trace_path((dir / ("trace-" + tag + ".jsonl")).string(), tag)
              .ok());
      const auto result = fuzz::CampaignRunner(instrumented).run(grid);
      ASSERT_TRUE(set_trace_path("").ok());

      EXPECT_EQ(campaign::canonical_result_bytes(result), reference);
      EXPECT_GT(callbacks.load(), 0u);

      // The status file landed, parses, and describes a finished grid.
      auto status = campaign::read_status_file(instrumented.status_path);
      ASSERT_TRUE(status.ok()) << status.error().message;
      EXPECT_EQ(status.value().shard_id, "probe-" + tag);
      EXPECT_EQ(status.value().cells_total, grid.size());
      EXPECT_EQ(status.value().cells_done, grid.size());

      // The trace stream saw the run: cell_start/cell_done per cell.
      auto traced =
          read_trace((dir / ("trace-" + tag + ".jsonl")).string());
      ASSERT_TRUE(traced.ok());
      std::size_t done_events = 0;
      for (const auto& event : traced.value().events) {
        if (event.event == "cell_done") ++done_events;
      }
      EXPECT_EQ(done_events, grid.size());
    }
  }
}

}  // namespace
}  // namespace iris::support
