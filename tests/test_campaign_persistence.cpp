// Tests for the persistent campaign subsystem (src/campaign/): on-disk
// corpus store round trips and atomicity, checkpoint journaling and
// kill/resume byte-identity across worker counts, crash-reproducer
// archiving and replay, and cross-worker corpus sync for the
// coverage-guided loop.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "campaign/checkpoint.h"
#include "campaign/corpus_store.h"
#include "campaign/crash_archive.h"
#include "campaign/sync_scheduler.h"
#include "fuzz/campaign.h"
#include "fuzz/coverage_guided.h"

namespace iris::campaign {
namespace {

namespace fs = std::filesystem;
using fuzz::CampaignConfig;
using fuzz::CampaignRunner;
using guest::Workload;

/// Fresh scratch directory per test, wiped up front so reruns start
/// clean.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

VmSeed make_seed(std::uint64_t value) {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kRdtsc;
  seed.items.push_back(SeedItem{SeedItemKind::kGpr, 0, value});
  seed.items.push_back(SeedItem{SeedItemKind::kGpr, 1, value ^ 0xFF});
  return seed;
}

fuzz::CorpusEntry make_entry(std::uint64_t value) {
  fuzz::CorpusEntry entry;
  entry.seed = make_seed(value);
  entry.energy = 32;
  entry.discoveries = 2;
  entry.born_of = fuzz::MutationOp::kArith;
  return entry;
}

CampaignConfig small_config(std::size_t workers) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

// --- CorpusStore ---

TEST(CorpusStore, EntryRoundTripPreservesSeedAndMetadata) {
  const auto dir = scratch_dir("corpus-roundtrip");
  CorpusStore store(dir.string());
  ASSERT_TRUE(store.init().ok());

  const auto entry = make_entry(0xAB);
  ASSERT_TRUE(store.write_entry(entry).ok());
  EXPECT_TRUE(store.contains(entry.seed));
  ASSERT_EQ(store.size(), 1u);

  const auto names = store.list();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], CorpusStore::entry_name(entry.seed));

  auto loaded = store.read_entry(names[0]);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().seed, entry.seed);
  EXPECT_EQ(loaded.value().energy, entry.energy);
  EXPECT_EQ(loaded.value().discoveries, entry.discoveries);
  EXPECT_EQ(loaded.value().born_of, entry.born_of);
}

TEST(CorpusStore, ContentHashNamesDeduplicateAcrossWriters) {
  const auto dir = scratch_dir("corpus-dedup");
  CorpusStore store(dir.string());
  ASSERT_TRUE(store.init().ok());

  // The same seed written twice (e.g. by two workers) is one file.
  ASSERT_TRUE(store.write_entry(make_entry(1)).ok());
  ASSERT_TRUE(store.write_entry(make_entry(1)).ok());
  ASSERT_TRUE(store.write_entry(make_entry(2)).ok());
  EXPECT_EQ(store.size(), 2u);
}

TEST(CorpusStore, LeavesNoTempFilesAndSkipsCorruptEntries) {
  const auto dir = scratch_dir("corpus-corrupt");
  CorpusStore store(dir.string());
  ASSERT_TRUE(store.init().ok());
  ASSERT_TRUE(store.write_entry(make_entry(3)).ok());

  // No temp droppings after a successful atomic write.
  for (const auto& dirent : fs::directory_iterator(dir)) {
    EXPECT_FALSE(dirent.path().filename().string().ends_with(".tmp"));
  }

  // A torn file (e.g. from a killed writer on a non-atomic filesystem)
  // is skipped by load_all, not fatal.
  std::ofstream bad(dir / "seed-0000000000000bad.bin", std::ios::binary);
  bad << "garbage";
  bad.close();
  std::size_t skipped = 0;
  const auto entries = store.load_all(&skipped);
  EXPECT_EQ(entries.size(), 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(CorpusStore, SyncFromImportsOnlyMissingEntries) {
  const auto src_dir = scratch_dir("corpus-sync-src");
  const auto dst_dir = scratch_dir("corpus-sync-dst");
  CorpusStore src(src_dir.string());
  CorpusStore dst(dst_dir.string());
  ASSERT_TRUE(src.init().ok());
  ASSERT_TRUE(dst.init().ok());

  ASSERT_TRUE(src.write_entry(make_entry(10)).ok());
  ASSERT_TRUE(src.write_entry(make_entry(11)).ok());
  ASSERT_TRUE(dst.write_entry(make_entry(11)).ok());  // shared already
  ASSERT_TRUE(dst.write_entry(make_entry(12)).ok());

  auto imported = dst.sync_from(src);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 1u);  // only entry 10 was missing
  EXPECT_EQ(dst.size(), 3u);

  // Re-syncing is a no-op.
  imported = dst.sync_from(src);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 0u);
}

// --- Checkpoint journal ---

TEST(CampaignCheckpoint, CellRoundTripIncludingCrashes) {
  fuzz::TestCaseResult result;
  result.spec = fuzz::TestCaseSpec{Workload::kIdle, vtx::ExitReason::kHlt,
                                   fuzz::MutationArea::kGpr, 500, 99};
  result.ran = true;
  result.target_index = 7;
  result.baseline_loc = 123;
  result.new_loc = 45;
  result.coverage_increase_pct = 36.58;
  result.executed = 500;
  result.vm_crashes = 3;
  fuzz::CrashRecord crash;
  crash.mutant = make_seed(0xDEAD);
  crash.mutation = fuzz::AppliedMutation{1, 9, 0xDEAD ^ 0xFF, 0xBEEF};
  crash.kind = hv::FailureKind::kVmCrash;
  crash.log_line = "domain 2 killed: triple fault";
  crash.mutant_index = 42;
  result.crashes.push_back(crash);

  CheckpointCell cell;
  cell.index = 5;
  cell.result = result;
  cell.coverage = {{hv::pack_block(hv::Component::kVmx, 3), 7},
                   {hv::pack_block(hv::Component::kEmulate, 9), 12}};

  ByteWriter w;
  serialize_checkpoint_cell(cell, w);
  ByteReader r(w.data());
  auto parsed = deserialize_checkpoint_cell(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.exhausted());

  const CheckpointCell& back = parsed.value();
  EXPECT_EQ(back.index, 5u);
  EXPECT_EQ(back.coverage, cell.coverage);
  ByteWriter a, b;
  serialize_cell_result(cell.result, a);
  serialize_cell_result(back.result, b);
  EXPECT_EQ(a.data(), b.data());
}

TEST(CampaignCheckpoint, RecoversAppendedCellsAndDropsTornTail) {
  const auto dir = scratch_dir("ckpt-torn");
  const std::string path = (dir / "campaign.ckpt").string();

  CheckpointCell cell;
  cell.index = 2;
  cell.result.ran = true;
  cell.result.executed = 10;
  cell.coverage = {{hv::pack_block(hv::Component::kVmx, 1), 4}};

  auto ckpt = CampaignCheckpoint::open(path, 0x1234);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_TRUE(ckpt.value().cells().empty());
  ASSERT_TRUE(ckpt.value().append(cell).ok());
  cell.index = 4;
  ASSERT_TRUE(ckpt.value().append(cell).ok());

  // Simulate a kill mid-append: garbage after the last intact record.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn << "\x30\x00\x00\x00partial";
  }
  const auto torn_size = fs::file_size(path);

  auto reopened = CampaignCheckpoint::open(path, 0x1234);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value().cells().size(), 2u);
  EXPECT_EQ(reopened.value().cells()[0].index, 2u);
  EXPECT_EQ(reopened.value().cells()[1].index, 4u);
  // The torn tail was truncated away so future appends extend a valid
  // journal.
  EXPECT_LT(fs::file_size(path), torn_size);
  ASSERT_TRUE(reopened.value().append(cell).ok());
  auto again = CampaignCheckpoint::open(path, 0x1234);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().cells().size(), 3u);
}

TEST(CampaignCheckpoint, RejectsForeignFingerprint) {
  const auto dir = scratch_dir("ckpt-foreign");
  const std::string path = (dir / "campaign.ckpt").string();
  ASSERT_TRUE(CampaignCheckpoint::open(path, 1).ok());
  EXPECT_FALSE(CampaignCheckpoint::open(path, 2).ok());
}

TEST(CampaignFingerprint, SensitiveToGridAndConfig) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 100, 7);
  const auto config = small_config(1);
  const auto base = campaign_fingerprint(grid, config);

  auto other_config = config;
  other_config.hv_seed ^= 1;
  EXPECT_NE(base, campaign_fingerprint(grid, other_config));

  auto other_grid = grid;
  other_grid[0].mutants += 1;
  EXPECT_NE(base, campaign_fingerprint(other_grid, config));

  // Worker count and persistence paths must NOT change the identity:
  // any sharding of the same campaign may resume any checkpoint.
  auto sharded = config;
  sharded.workers = 8;
  sharded.checkpoint_path = "/elsewhere.ckpt";
  sharded.cell_budget = 3;
  EXPECT_EQ(base, campaign_fingerprint(grid, sharded));
}

// --- Kill + resume determinism (the acceptance criterion) ---

class CampaignResumeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CampaignResumeTest, ResumedRunIsByteIdenticalToUninterrupted) {
  const std::size_t workers = GetParam();
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);

  // Reference: one uninterrupted, unpersisted run.
  const auto uninterrupted = CampaignRunner(small_config(workers)).run(grid);
  const auto reference = canonical_result_bytes(uninterrupted);

  // "Kill" a checkpointed run after 5 cells, then resume it to
  // completion in a fresh runner (a fresh process, as far as the
  // subsystem can tell: all state flows through the journal).
  const auto dir = scratch_dir("resume-w" + std::to_string(workers));
  auto config = small_config(workers);
  config.checkpoint_path = (dir / "campaign.ckpt").string();
  config.cell_budget = 5;
  const auto partial = CampaignRunner(config).run(grid);
  EXPECT_FALSE(partial.complete);
  EXPECT_TRUE(partial.persistence_error.empty()) << partial.persistence_error;
  EXPECT_EQ(partial.cells_resumed, 0u);

  auto resume_config = small_config(workers);
  resume_config.checkpoint_path = config.checkpoint_path;
  const auto resumed = CampaignRunner(resume_config).run(grid);
  EXPECT_TRUE(resumed.complete);
  EXPECT_TRUE(resumed.persistence_error.empty()) << resumed.persistence_error;
  EXPECT_EQ(resumed.cells_resumed, 5u);

  EXPECT_EQ(canonical_result_bytes(resumed), reference);

  // A third run resumes everything and still reproduces the bytes.
  const auto replayed = CampaignRunner(resume_config).run(grid);
  EXPECT_EQ(replayed.cells_resumed, grid.size());
  EXPECT_EQ(canonical_result_bytes(replayed), reference);
}

TEST_P(CampaignResumeTest, ResumeAcrossWorkerCountsMatches) {
  // A checkpoint written by a single worker can be finished by four
  // (and vice versa) — the journal carries no sharding assumptions.
  const std::size_t workers = GetParam();
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto reference =
      canonical_result_bytes(CampaignRunner(small_config(1)).run(grid));

  const auto dir = scratch_dir("resume-cross-w" + std::to_string(workers));
  auto config = small_config(workers);
  config.checkpoint_path = (dir / "campaign.ckpt").string();
  config.cell_budget = 7;
  (void)CampaignRunner(config).run(grid);

  auto finish = small_config(workers == 1 ? 4 : 1);
  finish.checkpoint_path = config.checkpoint_path;
  const auto resumed = CampaignRunner(finish).run(grid);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(canonical_result_bytes(resumed), reference);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CampaignResumeTest,
                         ::testing::Values(1u, 4u));

TEST(CampaignRunner, CellBudgetStopsCleanly) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 60, 7);
  auto config = small_config(2);
  config.cell_budget = 3;
  const auto result = CampaignRunner(config).run(grid);
  EXPECT_FALSE(result.complete);
  std::size_t with_results = 0;
  for (const auto& r : result.results) {
    if (r.executed > 0 || r.ran) ++with_results;
  }
  EXPECT_LE(with_results, 3u);
}

// --- Crash archive ---

TEST(CrashArchive, CampaignWritesReplayableReproducers) {
  const auto dir = scratch_dir("crash-archive");
  auto config = small_config(2);
  config.crash_archive_dir = (dir / "crashes").string();
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 300, 3);
  const auto result = CampaignRunner(config).run(grid);
  ASSERT_FALSE(result.unique_crashes.empty());
  EXPECT_TRUE(result.persistence_error.empty()) << result.persistence_error;

  CrashArchive archive(config.crash_archive_dir);
  const auto names = archive.list();
  ASSERT_EQ(names.size(), result.unique_crashes.size());

  std::size_t matched = 0;
  for (const auto& name : names) {
    auto repro = archive.load(name);
    ASSERT_TRUE(repro.ok()) << name;
    EXPECT_EQ(CrashArchive::reproducer_name(repro.value().key), name);
    const auto verdict = CrashArchive::replay(repro.value());
    EXPECT_TRUE(verdict.walked) << name;
    if (verdict.matches) ++matched;
  }
  // Every reproducer must re-fail with its archived failure kind.
  EXPECT_EQ(matched, names.size());
}

TEST(CrashArchive, ReproducerRoundTripAndCorruptionRejected) {
  CrashReproducer repro;
  repro.key = fuzz::CrashKey{hv::FailureKind::kVmCrash, vtx::ExitReason::kCpuid,
                             SeedItemKind::kVmcsField, 9};
  repro.spec = fuzz::TestCaseSpec{Workload::kOsBoot, vtx::ExitReason::kCpuid,
                                  fuzz::MutationArea::kVmcs, 100, 5};
  repro.hv_seed = 77;
  repro.target_index = 2;
  repro.prefix = {make_seed(1), make_seed(2), make_seed(3)};
  repro.mutant = make_seed(0xBAD);

  ByteWriter w;
  CrashArchive::serialize_reproducer(repro, w);
  {
    ByteReader r(w.data());
    auto back = CrashArchive::deserialize_reproducer(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().key, repro.key);
    EXPECT_EQ(back.value().prefix, repro.prefix);
    EXPECT_EQ(back.value().mutant, repro.mutant);
    EXPECT_EQ(back.value().target_index, repro.target_index);
  }
  // Every strict prefix must fail cleanly, never crash.
  for (std::size_t len = 0; len < w.size(); ++len) {
    ByteReader r(std::span(w.data()).first(len));
    EXPECT_FALSE(CrashArchive::deserialize_reproducer(r).ok()) << len;
  }
}

// --- Cross-worker corpus sync ---

class SyncTest : public ::testing::Test {
 protected:
  SyncTest() : hv_(51, 0.0), manager_(hv_) {
    behavior_ = &manager_.record_workload(Workload::kCpuBound, 200, 3);
    for (std::size_t i = 50; i < behavior_->size(); ++i) {
      if ((*behavior_)[i].seed.reason == vtx::ExitReason::kRdtsc) {
        target_ = i;
        break;
      }
    }
  }

  hv::Hypervisor hv_;
  Manager manager_;
  const VmBehavior* behavior_ = nullptr;
  std::size_t target_ = 0;
};

TEST_F(SyncTest, DiscoveriesPropagateBetweenWorkers) {
  const auto dir = scratch_dir("sync-store");
  CorpusStore store(dir.string());

  // Worker A fuzzes and publishes its corpus.
  SyncScheduler sched_a(store, SyncScheduler::Config{256, 16});
  fuzz::CoverageGuidedFuzzer::Config config_a;
  config_a.max_executions = 600;
  config_a.sync = &sched_a;
  fuzz::CoverageGuidedFuzzer worker_a(manager_, config_a);
  const auto stats_a = worker_a.run(*behavior_, target_, fuzz::MutationArea::kVmcs, 7);
  EXPECT_GT(stats_a.corpus_size, 1u);
  EXPECT_GT(stats_a.seeds_exported, 1u);
  EXPECT_LE(stats_a.seeds_exported, stats_a.corpus_size);
  EXPECT_EQ(store.size(), stats_a.seeds_exported);

  // Worker B (fresh VM stack, different rng) imports them up front and
  // schedules them alongside its own corpus.
  hv::Hypervisor hv_b(51, 0.0);
  Manager manager_b(hv_b);
  const VmBehavior& behavior_b =
      manager_b.record_workload(Workload::kCpuBound, 200, 3);
  SyncScheduler sched_b(store, SyncScheduler::Config{256, 16});
  fuzz::CoverageGuidedFuzzer::Config config_b;
  config_b.max_executions = 300;
  config_b.sync = &sched_b;
  fuzz::CoverageGuidedFuzzer worker_b(manager_b, config_b);
  const auto stats_b = worker_b.run(behavior_b, target_, fuzz::MutationArea::kVmcs, 23);
  EXPECT_GT(stats_b.seeds_imported, 0u);
  EXPECT_GE(stats_b.corpus_size, 1u + stats_b.seeds_imported);
}

TEST_F(SyncTest, ImportRespectsCorpusCap) {
  const auto dir = scratch_dir("sync-cap");
  CorpusStore store(dir.string());
  ASSERT_TRUE(store.init().ok());
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.write_entry(make_entry(i)).ok());
  }

  std::vector<fuzz::CorpusEntry> corpus;
  corpus.push_back(make_entry(100));
  SyncScheduler sched(store, SyncScheduler::Config{64, 16});
  ASSERT_TRUE(sched.sync(corpus, 8).ok());
  EXPECT_LE(corpus.size(), 8u);
  EXPECT_EQ(sched.stats().imported, 7u);
  for (std::size_t i = 1; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].energy, 16u);
  }
  // The local entry was exported during the same sync.
  EXPECT_TRUE(store.contains(corpus[0].seed));
}

TEST_F(SyncTest, SyncedWorkerNeverLosesCoverage) {
  // Sanity: attaching a scheduler must not break the loop's invariants.
  const auto dir = scratch_dir("sync-invariant");
  CorpusStore store(dir.string());
  SyncScheduler sched(store, SyncScheduler::Config{128, 16});
  fuzz::CoverageGuidedFuzzer::Config with_sync;
  with_sync.max_executions = 400;
  with_sync.sync = &sched;
  fuzz::CoverageGuidedFuzzer fuzzer(manager_, with_sync);
  const auto stats = fuzzer.run(*behavior_, target_, fuzz::MutationArea::kVmcs, 7);
  EXPECT_EQ(stats.executed, 400u);
  for (std::size_t i = 1; i < stats.coverage_curve.size(); ++i) {
    EXPECT_GE(stats.coverage_curve[i], stats.coverage_curve[i - 1]);
  }
}

}  // namespace
}  // namespace iris::campaign
