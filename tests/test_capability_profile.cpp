// VMX capability-profile matrix tests.
//
// Covers the BitDefs mask algebra, the library profiles, per-profile
// allowed-0/allowed-1 control rejection at VM entry, reset≡fresh for
// pooled stacks under every profile, the baseline byte-identity
// guarantee (the refactor must not move a single baseline output bit),
// profile-grid divergence, checkpoint resume and 2-shard reduce of a
// profile-matrix campaign, and the v2/v3 journal-version gate.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/reducer.h"
#include "fuzz/campaign.h"
#include "fuzz/vm_pool.h"
#include "iris/manager.h"
#include "vtx/capability_profile.h"
#include "vtx/entry_checks.h"
#include "vtx/vmcs.h"
#include "vtx/vmx.h"

namespace iris {
namespace {

namespace fs = std::filesystem;
using fuzz::CampaignConfig;
using fuzz::CampaignRunner;
using fuzz::TestCaseSpec;
using vtx::BitDefs;
using vtx::ProfileId;
using vtx::VmxCapabilityProfile;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- BitDefs algebra -------------------------------------------------

TEST(BitDefs, ApplyClampsBothDirections) {
  const BitDefs defs{0x5, 0xFF};
  EXPECT_EQ(defs.apply(0x0), 0x5u);      // must-one bits forced on
  EXPECT_EQ(defs.apply(0x100), 0x5u);    // unsupported bit stripped
  EXPECT_EQ(defs.apply(0xA2), 0xA7u);    // both at once
  EXPECT_TRUE(defs.allows(defs.apply(0xFFFF'FFFF'FFFF'FFFFULL)));
}

TEST(BitDefs, ViolationMasksNameTheBits) {
  const BitDefs defs{0b0110, 0b1111'0110};
  EXPECT_EQ(defs.missing_ones(0b0010), 0b0100u);
  EXPECT_EQ(defs.missing_ones(0b0110), 0u);
  EXPECT_EQ(defs.forbidden_ones(0b1'0000'0110), 0b1'0000'0000u);
  EXPECT_FALSE(defs.allows(0b0010));
  EXPECT_FALSE(defs.allows(0b1'0000'0110));
  EXPECT_TRUE(defs.allows(0b0110));
}

TEST(BitDefs, FromMsrSplitsAllowedPairs) {
  // IA32_VMX_*_CTLS layout: low 32 = allowed-0 (must-be-one), high 32 =
  // allowed-1 (may-be-one).
  const BitDefs defs = BitDefs::from_msr(0x0000'00FF'0000'0016ULL);
  EXPECT_EQ(defs.must_one, 0x16u);
  EXPECT_EQ(defs.may_one, 0xFFu);
}

// --- Library ---------------------------------------------------------

TEST(ProfileLibrary, IdsNamesAndLookupsAgree) {
  const auto library = vtx::profile_library();
  ASSERT_EQ(library.size(), static_cast<std::size_t>(ProfileId::kCount));
  for (std::size_t i = 0; i < library.size(); ++i) {
    const auto& profile = library[i];
    EXPECT_EQ(static_cast<std::size_t>(profile.id), i);
    EXPECT_FALSE(profile.name.empty());
    EXPECT_EQ(vtx::to_string(profile.id), profile.name);
    const auto round = vtx::profile_id_from_string(profile.name);
    ASSERT_TRUE(round.has_value()) << profile.name;
    EXPECT_EQ(*round, profile.id);
    EXPECT_EQ(&vtx::profile_by_id(profile.id), &profile);
  }
  EXPECT_FALSE(vtx::profile_id_from_string("no-such-profile").has_value());
  EXPECT_FALSE(vtx::is_valid_profile_id(
      static_cast<std::uint8_t>(ProfileId::kCount)));
}

TEST(ProfileLibrary, BaselineMatchesPreProfileConstants) {
  const auto& baseline = vtx::baseline_profile();
  EXPECT_TRUE(baseline.is_baseline());
  // Controls are fully permissive in the 32-bit control space: recorded
  // seeds carry arbitrary control words that must keep entering.
  for (const BitDefs* defs :
       {&baseline.pin_based, &baseline.proc_based, &baseline.proc_based2,
        &baseline.vm_exit, &baseline.vm_entry}) {
    EXPECT_EQ(defs->must_one, 0u);
    EXPECT_EQ(defs->apply(0xDEAD'BEEFULL), 0xDEAD'BEEFULL);
  }
  // CR0: the legacy "NE fixed to 1" rule, nothing else.
  EXPECT_EQ(baseline.apply_cr0(0), vtx::kCr0Ne);
  EXPECT_EQ(baseline.cr0_fixed.missing_ones(vtx::kCr0Pe), vtx::kCr0Ne);
  // CR4: the legacy reserved mask (bits 23+ and bit 11 forbidden).
  EXPECT_NE(baseline.cr4_fixed.forbidden_ones(1ULL << 11), 0u);
  EXPECT_NE(baseline.cr4_fixed.forbidden_ones(1ULL << 23), 0u);
  EXPECT_EQ(baseline.cr4_fixed.forbidden_ones(vtx::kCr4Pae), 0u);
}

// --- Per-profile VM-entry rejection ----------------------------------

struct ControlField {
  const char* label;
  const BitDefs VmxCapabilityProfile::* defs;
  vtx::VmcsField field;
};

constexpr ControlField kControlFields[] = {
    {"pin-based controls", &VmxCapabilityProfile::pin_based,
     vtx::VmcsField::kPinBasedVmExecControl},
    {"primary processor-based controls", &VmxCapabilityProfile::proc_based,
     vtx::VmcsField::kCpuBasedVmExecControl},
    {"secondary processor-based controls", &VmxCapabilityProfile::proc_based2,
     vtx::VmcsField::kSecondaryVmExecControl},
    {"VM-exit controls", &VmxCapabilityProfile::vm_exit,
     vtx::VmcsField::kVmExitControls},
    {"VM-entry controls", &VmxCapabilityProfile::vm_entry,
     vtx::VmcsField::kVmEntryControls},
};

/// Guest state that passes every modeled SDM 26.3 check, with all five
/// control words clamped into `profile`'s supported range. The primary
/// controls always activate the secondary word so its checks apply.
vtx::Vmcs valid_vmcs_for(const VmxCapabilityProfile& profile) {
  vtx::Vmcs vmcs;
  vmcs.hw_write(vtx::VmcsField::kGuestCr0,
                profile.apply_cr0(vtx::kCr0Pe | vtx::kCr0Et));
  vmcs.hw_write(vtx::VmcsField::kGuestCr4, profile.apply_cr4(0));
  vmcs.hw_write(vtx::VmcsField::kGuestRflags, 0x2);
  vmcs.hw_write(vtx::VmcsField::kVmcsLinkPointer, ~0ULL);
  vmcs.hw_write(vtx::VmcsField::kGuestCsArBytes, 0x9B);
  vmcs.hw_write(vtx::VmcsField::kGuestTrArBytes, 0x8B);
  vmcs.hw_write(vtx::VmcsField::kGuestSsArBytes, 0x93);
  vmcs.hw_write(vtx::VmcsField::kGuestActivityState, vtx::kActivityActive);
  for (const auto& control : kControlFields) {
    std::uint64_t value = (profile.*control.defs).apply(0);
    if (control.field == vtx::VmcsField::kCpuBasedVmExecControl) {
      value = (profile.*control.defs).apply(value | vtx::kCpuSecondaryControls);
      value |= vtx::kCpuSecondaryControls;  // activate the secondary word
    }
    vmcs.hw_write(control.field, value);
  }
  return vmcs;
}

bool has_rule(const std::vector<vtx::EntryCheckViolation>& violations,
              std::string_view needle) {
  for (const auto& v : violations) {
    if (v.rule.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::uint64_t lowest_bit(std::uint64_t mask) { return mask & (~mask + 1); }

TEST(ProfileEntryChecks, CleanStatePassesEveryProfile) {
  for (const auto& profile : vtx::profile_library()) {
    const auto vmcs = valid_vmcs_for(profile);
    EXPECT_TRUE(vtx::check_control_fields(vmcs, profile).empty())
        << profile.name;
    EXPECT_TRUE(vtx::check_guest_state(vmcs, profile).empty()) << profile.name;
  }
}

TEST(ProfileEntryChecks, AllowedZeroViolationRejectedPerProfile) {
  // Clearing a must-be-one bit of any control word must be rejected with
  // the allowed-0 rule. Profiles without control must-one bits (the
  // baseline) exercise the equivalent CR0 fixed-1 rule instead.
  for (const auto& profile : vtx::profile_library()) {
    bool exercised = false;
    for (const auto& control : kControlFields) {
      const BitDefs& defs = profile.*control.defs;
      if (defs.must_one == 0) continue;
      auto vmcs = valid_vmcs_for(profile);
      const std::uint64_t clean = vmcs.hw_read(control.field);
      vmcs.hw_write(control.field, clean & ~lowest_bit(defs.must_one));
      const auto violations = vtx::check_control_fields(vmcs, profile);
      EXPECT_TRUE(has_rule(violations, std::string(control.label) +
                                           " allowed-0 violation"))
          << profile.name << ": " << control.label;
      exercised = true;
    }
    if (!exercised) {
      auto vmcs = valid_vmcs_for(profile);
      const std::uint64_t cr0 = vmcs.hw_read(vtx::VmcsField::kGuestCr0);
      vmcs.hw_write(vtx::VmcsField::kGuestCr0,
                    cr0 & ~lowest_bit(profile.cr0_fixed.must_one));
      EXPECT_TRUE(has_rule(vtx::check_guest_state(vmcs, profile), "fixed"))
          << profile.name;
    }
  }
}

TEST(ProfileEntryChecks, AllowedOneViolationRejectedPerProfile) {
  // Setting a must-be-zero control bit must be rejected with the
  // allowed-1 rule; fully permissive profiles exercise the CR4
  // must-be-zero (reserved) rule instead.
  for (const auto& profile : vtx::profile_library()) {
    bool exercised = false;
    for (const auto& control : kControlFields) {
      const BitDefs& defs = profile.*control.defs;
      const std::uint64_t forbidden = ~defs.may_one & 0xFFFF'FFFFULL;
      if (forbidden == 0) continue;
      auto vmcs = valid_vmcs_for(profile);
      std::uint64_t bit = lowest_bit(forbidden);
      if (control.field == vtx::VmcsField::kCpuBasedVmExecControl &&
          bit == vtx::kCpuSecondaryControls) {
        bit = lowest_bit(forbidden & ~vtx::kCpuSecondaryControls);
        if (bit == 0) continue;
      }
      vmcs.hw_write(control.field, vmcs.hw_read(control.field) | bit);
      const auto violations = vtx::check_control_fields(vmcs, profile);
      EXPECT_TRUE(has_rule(violations, std::string(control.label) +
                                           " allowed-1 violation"))
          << profile.name << ": " << control.label;
      exercised = true;
    }
    if (!exercised) {
      auto vmcs = valid_vmcs_for(profile);
      const std::uint64_t cr4 = vmcs.hw_read(vtx::VmcsField::kGuestCr4);
      vmcs.hw_write(vtx::VmcsField::kGuestCr4,
                    cr4 | lowest_bit(~profile.cr4_fixed.may_one));
      EXPECT_TRUE(has_rule(vtx::check_guest_state(vmcs, profile),
                           "CR4 reserved"))
          << profile.name;
    }
  }
}

TEST(ProfileEntryChecks, HypervisorLaunchesUnderEveryProfile) {
  // The hypervisor folds its launch controls through the active profile,
  // so construction + a short recording must succeed on every modeled
  // CPU — the clamp keeps its own entries in range by construction.
  for (const auto& profile : vtx::profile_library()) {
    hv::Hypervisor hypervisor(7, 0.0, profile);
    Manager manager(hypervisor);
    const VmBehavior& behavior =
        manager.record_workload(guest::Workload::kCpuBound, 20, 7);
    EXPECT_FALSE(behavior.empty()) << profile.name;
    EXPECT_EQ(&hypervisor.capability_profile(), &profile);
  }
}

// --- Pooled reset ≡ fresh under every profile ------------------------

TEST(ProfilePool, ResetMatchesFreshDigestForEveryProfile) {
  fuzz::PooledVm vm(17, 0.0);
  // Interleave profiles and revisit the first one, so a stale-profile
  // digest or memoization mixup cannot pass.
  std::vector<const VmxCapabilityProfile*> order;
  for (const auto& profile : vtx::profile_library()) order.push_back(&profile);
  order.push_back(&vtx::baseline_profile());
  for (const auto* profile : order) {
    vm.reset(*profile);
    EXPECT_EQ(hv::state_digest(vm.hv()), vm.fresh_digest(*profile))
        << profile->name;
  }
  // Distinct profiles must have distinct fresh digests (the digest
  // hashes the profile masks themselves).
  EXPECT_NE(vm.fresh_digest(vtx::baseline_profile()),
            vm.fresh_digest(vtx::profile_by_id(ProfileId::kStrictFixedCrs)));
}

// --- Baseline byte-identity ------------------------------------------

/// The canonical-result fnv1a of the reference campaign below, captured
/// on the pre-profile tree (PR 5). The profile refactor must reproduce
/// it bit-for-bit: baseline IS the old fixed CPU.
constexpr std::uint64_t kPreRefactorHash = 0xe7f9d222d96ab226ULL;

CampaignConfig reference_config(std::size_t workers, bool pooled) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 7;
  config.record_exits = 200;
  config.record_seed = 3;
  config.reuse_vm_stacks = pooled;
  return config;
}

std::vector<TestCaseSpec> reference_grid() {
  return fuzz::make_table1_grid({guest::Workload::kCpuBound}, 120, 7);
}

TEST(ProfileBaselineIdentity, CanonicalBytesMatchPreRefactorTree) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const bool pooled : {true, false}) {
      CampaignRunner runner(reference_config(workers, pooled));
      const auto result = runner.run(reference_grid());
      ASSERT_TRUE(result.complete);
      EXPECT_EQ(fnv1a(campaign::canonical_result_bytes(result)),
                kPreRefactorHash)
          << "workers=" << workers << " pooled=" << pooled;
    }
  }
}

TEST(ProfileBaselineIdentity, BaselineOnlyProfileGridIsTable1Grid) {
  const auto plain = reference_grid();
  const auto via_profiles = fuzz::make_profile_grid(
      {guest::Workload::kCpuBound}, 120, 7, {ProfileId::kBaseline});
  ASSERT_EQ(plain.size(), via_profiles.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ByteWriter a, b;
    campaign::serialize_spec(plain[i], a);
    campaign::serialize_spec(via_profiles[i], b);
    EXPECT_EQ(a.data(), b.data()) << i;
  }
}

// --- Profile-matrix campaigns ----------------------------------------

const std::vector<ProfileId> kMatrixProfiles = {
    ProfileId::kBaseline, ProfileId::kStrictFixedCrs,
    ProfileId::kNoUnrestrictedGuest};

CampaignConfig matrix_config(std::size_t workers) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 7;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

std::vector<TestCaseSpec> matrix_grid() {
  return fuzz::make_profile_grid({guest::Workload::kCpuBound}, 40, 7,
                                 kMatrixProfiles);
}

/// Canonical bytes of one profile's slice of the results, in grid order.
std::vector<std::uint8_t> profile_slice_bytes(
    const fuzz::CampaignResult& result, ProfileId id) {
  ByteWriter bytes;
  for (const auto& cell : result.results) {
    if (cell.spec.profile == id) campaign::serialize_cell_result(cell, bytes);
  }
  return bytes.data();
}

TEST(ProfileMatrixCampaign, ProfilesShareRngButDiverge) {
  const auto grid = matrix_grid();
  const std::size_t per_profile = grid.size() / kMatrixProfiles.size();
  ASSERT_EQ(grid.size(), per_profile * kMatrixProfiles.size());
  // Profile-major layout sharing the baseline's rng seeds: the matrix
  // varies the modeled CPU and nothing else.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].profile, kMatrixProfiles[i / per_profile]);
    EXPECT_EQ(grid[i].rng_seed, grid[i % per_profile].rng_seed);
  }

  CampaignRunner runner(matrix_config(2));
  const auto result = runner.run(grid);
  ASSERT_TRUE(result.complete);
  const auto baseline = profile_slice_bytes(result, ProfileId::kBaseline);
  // Both restrictive profiles make recorded guest CR0/CR4 values fail
  // the fixed-bit checks, so their slices must diverge from baseline.
  EXPECT_NE(profile_slice_bytes(result, ProfileId::kStrictFixedCrs), baseline);
  EXPECT_NE(profile_slice_bytes(result, ProfileId::kNoUnrestrictedGuest),
            baseline);
}

TEST(ProfileMatrixCampaign, WorkerCountInvariant) {
  const auto grid = matrix_grid();
  CampaignRunner one(matrix_config(1));
  CampaignRunner four(matrix_config(4));
  const auto a = one.run(grid);
  const auto b = four.run(grid);
  EXPECT_EQ(campaign::canonical_result_bytes(a),
            campaign::canonical_result_bytes(b));
}

TEST(ProfileMatrixCampaign, CheckpointResumeIsByteIdentical) {
  const fs::path dir = scratch_dir("profile-resume");
  const auto grid = matrix_grid();

  CampaignRunner direct(matrix_config(2));
  const auto expected =
      campaign::canonical_result_bytes(direct.run(grid));

  auto config = matrix_config(2);
  config.checkpoint_path = (dir / "matrix.ckpt").string();
  config.cell_budget = 3;
  const auto partial = CampaignRunner(config).run(grid);
  ASSERT_TRUE(partial.persistence_error.empty()) << partial.persistence_error;
  ASSERT_FALSE(partial.complete);

  config.cell_budget = 0;
  const auto resumed = CampaignRunner(config).run(grid);
  ASSERT_TRUE(resumed.persistence_error.empty()) << resumed.persistence_error;
  ASSERT_TRUE(resumed.complete);
  EXPECT_GT(resumed.cells_resumed, 0u);
  EXPECT_EQ(campaign::canonical_result_bytes(resumed), expected);
}

TEST(ProfileMatrixCampaign, TwoShardReduceIsByteIdentical) {
  const fs::path dir = scratch_dir("profile-reduce");
  const auto grid = matrix_grid();
  auto config = matrix_config(2);

  // Run the full campaign once with a journal, then split its cell
  // records across two shard journals — exactly the journal content two
  // grid-lease shards would have produced.
  config.checkpoint_path = (dir / "full.ckpt").string();
  CampaignRunner runner(config);
  const auto full = runner.run(grid);
  ASSERT_TRUE(full.complete);
  ASSERT_TRUE(full.persistence_error.empty()) << full.persistence_error;
  const auto expected = campaign::canonical_result_bytes(full);

  const auto fingerprint = campaign::campaign_fingerprint(grid, config);
  auto source = campaign::CampaignCheckpoint::open(
      config.checkpoint_path, fingerprint, /*profile_matrix=*/true);
  ASSERT_TRUE(source.ok()) << source.error().message;
  const std::string shard_a = (dir / "shard-a.ckpt").string();
  const std::string shard_b = (dir / "shard-b.ckpt").string();
  auto a = campaign::CampaignCheckpoint::open(shard_a, fingerprint, true);
  auto b = campaign::CampaignCheckpoint::open(shard_b, fingerprint, true);
  ASSERT_TRUE(a.ok() && b.ok());
  std::size_t n = 0;
  for (const auto& cell : source.value().cells()) {
    ASSERT_TRUE(((n++ % 2 == 0) ? a : b).value().append(cell).ok());
  }

  config.checkpoint_path.clear();
  auto reduced = campaign::reduce_journals({shard_a, shard_b}, grid, config);
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_TRUE(reduced.value().missing.empty());
  EXPECT_EQ(campaign::canonical_result_bytes(reduced.value().result), expected);
}

// --- Journal version gate --------------------------------------------

TEST(JournalVersion, LegacyJournalRejectsProfileMatrixConfig) {
  const fs::path dir = scratch_dir("journal-v2-gate");
  const std::string path = (dir / "legacy.ckpt").string();
  ASSERT_TRUE(campaign::CampaignCheckpoint::open(path, 0x99).ok());

  auto clash = campaign::CampaignCheckpoint::open(path, 0x99,
                                                  /*profile_matrix=*/true);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.error().code, 66);
  EXPECT_NE(clash.error().message.find(path), std::string::npos);
  EXPECT_NE(clash.error().message.find("journal version 2"),
            std::string::npos);

  // The legacy journal still resumes legacy campaigns untouched.
  EXPECT_TRUE(campaign::CampaignCheckpoint::open(path, 0x99).ok());
}

TEST(JournalVersion, ProfiledJournalRejectsLegacyConfig) {
  const fs::path dir = scratch_dir("journal-v3-gate");
  const std::string path = (dir / "matrix.ckpt").string();
  ASSERT_TRUE(
      campaign::CampaignCheckpoint::open(path, 0x99, /*profile_matrix=*/true)
          .ok());

  auto clash = campaign::CampaignCheckpoint::open(path, 0x99);
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.error().code, 67);
  EXPECT_NE(clash.error().message.find(path), std::string::npos);
  EXPECT_NE(clash.error().message.find("journal version 3"),
            std::string::npos);

  EXPECT_TRUE(
      campaign::CampaignCheckpoint::open(path, 0x99, true).ok());
}

TEST(JournalVersion, GridUsesProfilesDrivesTheGate) {
  EXPECT_FALSE(campaign::grid_uses_profiles(reference_grid()));
  EXPECT_TRUE(campaign::grid_uses_profiles(matrix_grid()));
}

// --- Wire formats ----------------------------------------------------

TEST(ProfileWire, SpecRoundTripsAndBaselineLayoutIsLegacy) {
  TestCaseSpec spec;
  spec.workload = guest::Workload::kCpuBound;
  spec.reason = vtx::ExitReason::kCpuid;
  spec.area = fuzz::MutationArea::kGpr;
  spec.mutants = 77;
  spec.rng_seed = 0xABCD;

  ByteWriter base;
  campaign::serialize_spec(spec, base);
  // Baseline wire: no profile flag, no trailing byte.
  EXPECT_EQ(base.data()[0] & 0x80, 0);

  spec.profile = ProfileId::kStrictFixedCrs;
  ByteWriter profiled;
  campaign::serialize_spec(spec, profiled);
  EXPECT_EQ(profiled.data().size(), base.data().size() + 1);
  EXPECT_NE(profiled.data()[0] & 0x80, 0);

  ByteReader in(profiled.data());
  auto round = campaign::deserialize_spec(in);
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value().profile, ProfileId::kStrictFixedCrs);
  EXPECT_EQ(round.value().rng_seed, spec.rng_seed);
  EXPECT_EQ(round.value().workload, spec.workload);

  // A flagged byte carrying an invalid profile id is corruption.
  auto bytes = profiled.data();
  bytes.back() = static_cast<std::uint8_t>(ProfileId::kCount);
  ByteReader bad(bytes);
  EXPECT_FALSE(campaign::deserialize_spec(bad).ok());
}

TEST(ProfileWire, SeedRoundTripsProfileId) {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kRdtsc;
  seed.items.push_back(SeedItem{SeedItemKind::kGpr, 2, 0x1234});
  seed.profile = ProfileId::kNoTprShadow;

  ByteWriter out;
  seed.serialize(out);
  EXPECT_EQ(out.data().size(), seed.byte_size());
  ByteReader in(out.data());
  auto round = VmSeed::deserialize(in);
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_EQ(round.value().profile, ProfileId::kNoTprShadow);
  EXPECT_EQ(round.value().reason, vtx::ExitReason::kRdtsc);

  // A flagged reason word with a baseline profile byte never comes from
  // our writer — reject it so serialize∘deserialize is the identity.
  auto bytes = out.data();
  bytes[2] = 0;  // the trailing... profile byte sits right after reason
  ByteReader bad(bytes);
  EXPECT_FALSE(VmSeed::deserialize(bad).ok());
}

TEST(ProfileWire, RecorderStampsActiveProfile) {
  const auto& profile = vtx::profile_by_id(ProfileId::kMinimalSecondaryCtls);
  hv::Hypervisor hypervisor(11, 0.0, profile);
  Manager manager(hypervisor);
  const VmBehavior& behavior =
      manager.record_workload(guest::Workload::kCpuBound, 15, 11);
  ASSERT_FALSE(behavior.empty());
  for (const auto& record : behavior) {
    EXPECT_EQ(record.seed.profile, ProfileId::kMinimalSecondaryCtls);
  }
}

}  // namespace
}  // namespace iris
