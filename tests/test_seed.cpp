// Tests for the VM seed format: the paper's packed {flag, encoding,
// value} records, serialization round-trips, and the seed DB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "iris/seed.h"
#include "iris/seed_db.h"

namespace iris {
namespace {

VmSeed sample_seed() {
  VmSeed seed;
  seed.reason = vtx::ExitReason::kCrAccess;
  for (int i = 0; i < vcpu::kNumGprs; ++i) {
    seed.items.push_back(SeedItem{SeedItemKind::kGpr, static_cast<std::uint8_t>(i),
                                  0x1000ULL + static_cast<std::uint64_t>(i)});
  }
  const auto add_field = [&seed](vtx::VmcsField f, std::uint64_t v) {
    seed.items.push_back(
        SeedItem{SeedItemKind::kVmcsField, *vtx::compact_index(f), v});
  };
  add_field(vtx::VmcsField::kVmExitReason, 28);
  add_field(vtx::VmcsField::kExitQualification, 0x0);
  add_field(vtx::VmcsField::kGuestCr0, 0x31);
  add_field(vtx::VmcsField::kGuestRip, 0x7C00);
  return seed;
}

TEST(SeedItem, TenByteSerializedLayout) {
  // The paper's struct: flag (1B) + encoding (1B) + value (8B) = 10B.
  // (Plus the 4-byte seed header and the 2-byte count of the optional
  // §IX memory section, empty under the baseline configuration.)
  VmSeed seed;
  seed.items.push_back(SeedItem{SeedItemKind::kGpr, 0, 0xAABB});
  ByteWriter w;
  seed.serialize(w);
  EXPECT_EQ(w.size(), 4u + kSeedItemBytes + 2u);
}

TEST(VmSeed, WorstCaseMatchesPaperBudget) {
  // 15 GPRs + 32 VMCS ops = 47 items x 10 B = 470 B (paper §VI-D).
  VmSeed seed;
  for (int i = 0; i < vcpu::kNumGprs; ++i) {
    seed.items.push_back(SeedItem{SeedItemKind::kGpr, static_cast<std::uint8_t>(i), 0});
  }
  for (int i = 0; i < 32; ++i) {
    seed.items.push_back(SeedItem{SeedItemKind::kVmcsField,
                                  static_cast<std::uint8_t>(i), 0});
  }
  EXPECT_EQ(seed.items.size() * kSeedItemBytes, 470u);
}

TEST(VmSeed, SerializeDeserializeRoundTrip) {
  const VmSeed seed = sample_seed();
  ByteWriter w;
  seed.serialize(w);
  ByteReader r(w.data());
  const auto back = VmSeed::deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), seed);
}

TEST(VmSeed, DeserializeRejectsBadFlag) {
  ByteWriter w;
  w.u16(28);  // reason
  w.u16(1);   // one item
  w.u8(7);    // invalid flag
  w.u8(0);
  w.u64(0);
  ByteReader r(w.data());
  EXPECT_FALSE(VmSeed::deserialize(r).ok());
}

TEST(VmSeed, DeserializeRejectsBadGprEncoding) {
  ByteWriter w;
  w.u16(28);
  w.u16(1);
  w.u8(0);    // GPR flag
  w.u8(15);   // only 0..14 valid
  w.u64(0);
  ByteReader r(w.data());
  EXPECT_FALSE(VmSeed::deserialize(r).ok());
}

TEST(VmSeed, DeserializeRejectsUndefinedReason) {
  ByteWriter w;
  w.u16(35);  // SDM hole
  w.u16(0);
  ByteReader r(w.data());
  EXPECT_FALSE(VmSeed::deserialize(r).ok());
}

TEST(VmSeed, DeserializeRejectsTruncation) {
  const VmSeed seed = sample_seed();
  ByteWriter w;
  seed.serialize(w);
  auto bytes = w.data();
  ASSERT_GT(bytes.size(), 3u);
  // Clamped so GCC's range analysis can prove the new size never wraps
  // (-Werror=stringop-overflow under the sanitizer preset).
  bytes.resize(bytes.size() - std::min<std::size_t>(bytes.size(), 3));
  ByteReader r(bytes);
  EXPECT_FALSE(VmSeed::deserialize(r).ok());
}

TEST(VmSeed, FindFieldAndGpr) {
  const VmSeed seed = sample_seed();
  EXPECT_EQ(seed.find_field(vtx::VmcsField::kGuestCr0).value_or(0), 0x31u);
  EXPECT_FALSE(seed.find_field(vtx::VmcsField::kGuestCr4).has_value());
  EXPECT_EQ(seed.find_gpr(vcpu::Gpr::kRax).value_or(0), 0x1000u);
  EXPECT_EQ(seed.find_gpr(vcpu::Gpr::kR15).value_or(0), 0x100Eu);
}

TEST(VmSeed, CountsByKind) {
  const VmSeed seed = sample_seed();
  EXPECT_EQ(seed.gpr_count(), 15u);
  EXPECT_EQ(seed.vmcs_count(), 4u);
}

TEST(VmSeed, HashDetectsContentChange) {
  VmSeed a = sample_seed();
  VmSeed b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.items[3].value ^= 1;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(SeedMetrics, GuestStateWriteFilter) {
  SeedMetrics metrics;
  metrics.vmwrites = {
      {vtx::VmcsField::kGuestCr0, 0x31},            // guest state
      {vtx::VmcsField::kCr0ReadShadow, 0x1},        // control
      {vtx::VmcsField::kGuestRip, 0x7C02},          // guest state
      {vtx::VmcsField::kVmEntryIntrInfoField, 0x0}, // control
  };
  const auto gs = metrics.guest_state_writes();
  ASSERT_EQ(gs.size(), 2u);
  EXPECT_EQ(gs[0].first, vtx::VmcsField::kGuestCr0);
  EXPECT_EQ(gs[1].first, vtx::VmcsField::kGuestRip);
}

TEST(Behavior, SerializeRoundTripWithMetrics) {
  VmBehavior behavior;
  RecordedExit rec;
  rec.seed = sample_seed();
  rec.metrics.cycles = 12345;
  rec.metrics.vmwrites = {{vtx::VmcsField::kGuestRip, 0x7C02}};
  behavior.push_back(rec);
  behavior.push_back(rec);

  ByteWriter w;
  serialize_behavior(behavior, w);
  ByteReader r(w.data());
  const auto back = deserialize_behavior(r);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[0].seed, behavior[0].seed);
  EXPECT_EQ(back.value()[0].metrics.cycles, 12345u);
  ASSERT_EQ(back.value()[1].metrics.vmwrites.size(), 1u);
  EXPECT_EQ(back.value()[1].metrics.vmwrites[0].second, 0x7C02u);
}

TEST(SeedDb, StoreAndLookup) {
  SeedDb db;
  VmBehavior behavior;
  behavior.push_back(RecordedExit{sample_seed(), {}});
  db.store("OS_BOOT", behavior);
  EXPECT_EQ(db.size(), 1u);
  ASSERT_NE(db.behavior("OS_BOOT"), nullptr);
  EXPECT_EQ(db.behavior("OS_BOOT")->size(), 1u);
  EXPECT_EQ(db.behavior("missing"), nullptr);
}

TEST(SeedDb, SeedsWithReason) {
  SeedDb db;
  VmBehavior behavior;
  behavior.push_back(RecordedExit{sample_seed(), {}});  // CR access
  VmSeed rdtsc;
  rdtsc.reason = vtx::ExitReason::kRdtsc;
  behavior.push_back(RecordedExit{rdtsc, {}});
  behavior.push_back(RecordedExit{sample_seed(), {}});
  db.store("w", behavior);
  EXPECT_EQ(db.seeds_with_reason("w", vtx::ExitReason::kCrAccess),
            (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(db.seeds_with_reason("w", vtx::ExitReason::kRdtsc),
            (std::vector<std::size_t>{1}));
  EXPECT_TRUE(db.seeds_with_reason("w", vtx::ExitReason::kHlt).empty());
}

TEST(SeedDb, UniqueSeedCountDeduplicates) {
  SeedDb db;
  VmBehavior behavior;
  behavior.push_back(RecordedExit{sample_seed(), {}});
  behavior.push_back(RecordedExit{sample_seed(), {}});  // duplicate content
  db.store("w", behavior);
  EXPECT_EQ(db.unique_seed_count(), 1u);
}

TEST(SeedDb, SerializeRoundTrip) {
  SeedDb db;
  VmBehavior behavior;
  behavior.push_back(RecordedExit{sample_seed(), {}});
  db.store("CPU-bound", behavior);
  db.store("IDLE", behavior);

  const auto bytes = db.serialize();
  const auto back = SeedDb::deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 2u);
  EXPECT_NE(back.value().behavior("CPU-bound"), nullptr);
  EXPECT_EQ(back.value().behavior("CPU-bound")->at(0).seed, sample_seed());
}

TEST(SeedDb, RejectsBadMagic) {
  std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(SeedDb::deserialize(junk).ok());
}

TEST(SeedDb, FileRoundTrip) {
  SeedDb db;
  VmBehavior behavior;
  behavior.push_back(RecordedExit{sample_seed(), {}});
  db.store("w", behavior);
  const std::string path = ::testing::TempDir() + "/iris_seeds.bin";
  ASSERT_TRUE(db.save_file(path).ok());
  const auto back = SeedDb::load_file(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 1u);
  std::remove(path.c_str());
}

TEST(SeedDb, TotalSeedBytesAccounting) {
  SeedDb db;
  VmBehavior behavior;
  behavior.push_back(RecordedExit{sample_seed(), {}});
  db.store("w", behavior);
  EXPECT_EQ(db.total_seed_bytes(), sample_seed().byte_size());
}

}  // namespace
}  // namespace iris
