// Unit tests for the interrupt substrate: vLAPIC, virtual platform
// timer, and the IRQ chip's exit-path assist.
#include <gtest/gtest.h>

#include "hv/irq.h"
#include "hv/vlapic.h"
#include "hv/vpt.h"

namespace iris::hv {
namespace {

class VlapicTest : public ::testing::Test {
 protected:
  CoverageMap cov_;
  Vlapic lapic_{0};
};

TEST_F(VlapicTest, IdAndVersionRegisters) {
  Vlapic lapic(3);
  EXPECT_EQ(lapic.read(kApicRegId, cov_) >> 24, 3u);
  EXPECT_EQ(lapic.read(kApicRegVersion, cov_) & 0xFF, 0x14u);
}

TEST_F(VlapicTest, TprReadWrite) {
  lapic_.write(kApicRegTpr, 0x20, cov_);
  EXPECT_EQ(lapic_.tpr(), 0x20);
  EXPECT_EQ(lapic_.read(kApicRegTpr, cov_), 0x20u);
}

TEST_F(VlapicTest, InjectSetsIrr) {
  lapic_.inject(0x30, cov_);
  EXPECT_TRUE(lapic_.has_pending());
  EXPECT_EQ(lapic_.highest_pending().value_or(0), 0x30);
  // The IRR window registers reflect the bit.
  EXPECT_NE(lapic_.read(kApicRegIrrBase + (0x30 / 32) * 0x10, cov_), 0u);
}

TEST_F(VlapicTest, IllegalVectorSetsEsr) {
  lapic_.inject(5, cov_);
  EXPECT_FALSE(lapic_.has_pending());
  EXPECT_NE(lapic_.read(kApicRegEsr, cov_), 0u);
}

TEST_F(VlapicTest, HighestPendingPriorityOrder) {
  lapic_.inject(0x31, cov_);
  lapic_.inject(0x80, cov_);
  lapic_.inject(0x42, cov_);
  EXPECT_EQ(lapic_.highest_pending().value_or(0), 0x80);
}

TEST_F(VlapicTest, TprGatesDelivery) {
  lapic_.inject(0x35, cov_);
  lapic_.write(kApicRegTpr, 0x40, cov_);  // priority class 4 > vector class 3
  EXPECT_FALSE(lapic_.highest_pending().has_value());
  lapic_.write(kApicRegTpr, 0x20, cov_);
  EXPECT_EQ(lapic_.highest_pending().value_or(0), 0x35);
}

TEST_F(VlapicTest, AcceptMovesIrrToIsrAndEoiClears) {
  lapic_.inject(0x50, cov_);
  lapic_.accept(0x50, cov_);
  EXPECT_FALSE(lapic_.has_pending());
  EXPECT_NE(lapic_.read(kApicRegIsrBase + (0x50 / 32) * 0x10, cov_), 0u);
  lapic_.write(kApicRegEoi, 0, cov_);
  EXPECT_EQ(lapic_.read(kApicRegIsrBase + (0x50 / 32) * 0x10, cov_), 0u);
}

TEST_F(VlapicTest, SelfIpiQueuesVector) {
  // ICR with fixed delivery, self shorthand.
  lapic_.write(kApicRegIcrLow, (1u << 18) | 0x66, cov_);
  EXPECT_EQ(lapic_.highest_pending().value_or(0), 0x66);
}

TEST_F(VlapicTest, ReservedWriteSetsEsr) {
  lapic_.write(0x40, 1, cov_);  // reserved offset
  EXPECT_NE(lapic_.read(kApicRegEsr, cov_), 0u);
}

TEST_F(VlapicTest, ResetClearsState) {
  lapic_.inject(0x70, cov_);
  lapic_.write(kApicRegTpr, 0x10, cov_);
  lapic_.reset();
  EXPECT_FALSE(lapic_.has_pending());
  EXPECT_EQ(lapic_.tpr(), 0);
}

TEST(Vpt, TicksAccrueWithTime) {
  CoverageMap cov;
  Vpt vpt(1000, 0xF0);
  EXPECT_FALSE(vpt.pending());
  vpt.tick_to(999, cov);
  EXPECT_FALSE(vpt.pending());
  vpt.tick_to(1000, cov);
  EXPECT_TRUE(vpt.pending());
  EXPECT_EQ(vpt.consume(cov), 0xF0);
  EXPECT_FALSE(vpt.pending());
}

TEST(Vpt, BurstCollapsesToOnePendingTick) {
  CoverageMap cov;
  Vpt vpt(1000);
  vpt.tick_to(5500, cov);  // 5 periods elapsed
  EXPECT_TRUE(vpt.pending());
  (void)vpt.consume(cov);
  EXPECT_FALSE(vpt.pending());          // collapsed
  EXPECT_EQ(vpt.missed_ticks(), 4u);    // the other 4 accounted as missed
}

TEST(Vpt, TimeNeverGoesBackward) {
  CoverageMap cov;
  Vpt vpt(1000);
  vpt.tick_to(2000, cov);
  (void)vpt.consume(cov);
  vpt.tick_to(1500, cov);  // stale timestamp: ignored
  EXPECT_FALSE(vpt.pending());
}

TEST(IrqChip, AssistDeliversWhenInterruptible) {
  CoverageMap cov;
  Vlapic lapic;
  IrqChip irq;
  irq.assert_vector(0x30, cov);
  const auto vector = irq.intr_assist(lapic, /*guest_interruptible=*/true, cov);
  ASSERT_TRUE(vector.has_value());
  EXPECT_EQ(*vector, 0x30);
  EXPECT_FALSE(irq.want_window());
  EXPECT_FALSE(lapic.has_pending());  // moved to in-service
}

TEST(IrqChip, AssistArmsWindowWhenBlocked) {
  CoverageMap cov;
  Vlapic lapic;
  IrqChip irq;
  irq.assert_vector(0x30, cov);
  const auto vector = irq.intr_assist(lapic, /*guest_interruptible=*/false, cov);
  EXPECT_FALSE(vector.has_value());
  EXPECT_TRUE(irq.want_window());
  // The vector stays pending in the vLAPIC for the window exit.
  EXPECT_TRUE(lapic.has_pending());
}

TEST(IrqChip, NothingPendingNoWindow) {
  CoverageMap cov;
  Vlapic lapic;
  IrqChip irq;
  EXPECT_FALSE(irq.intr_assist(lapic, true, cov).has_value());
  EXPECT_FALSE(irq.want_window());
}

TEST(IrqChip, QueueDrainsInOrderByPriority) {
  CoverageMap cov;
  Vlapic lapic;
  IrqChip irq;
  irq.assert_vector(0x31, cov);
  irq.assert_vector(0x90, cov);
  const auto first = irq.intr_assist(lapic, true, cov);
  EXPECT_EQ(first.value_or(0), 0x90);  // highest priority first
  const auto second = irq.intr_assist(lapic, true, cov);
  EXPECT_EQ(second.value_or(0), 0x31);
}

TEST(IrqChip, ResetClearsQueueAndWindow) {
  CoverageMap cov;
  Vlapic lapic;
  IrqChip irq;
  irq.assert_vector(0x40, cov);
  irq.intr_assist(lapic, false, cov);
  EXPECT_TRUE(irq.want_window());
  irq.reset();
  EXPECT_FALSE(irq.want_window());
  EXPECT_FALSE(irq.has_queued());
}

}  // namespace
}  // namespace iris::hv
