// Tests for the IRIS manager: operation modes, snapshots, the analysis
// pipeline, and the xc_vmcs_fuzzing hypercall interface (§IV-C, §V-C).
#include <gtest/gtest.h>

#include "guest/guest_ops.h"
#include "iris/analysis.h"
#include "iris/manager.h"
#include "sim/cost_model.h"

namespace iris {
namespace {

using guest::Workload;

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : hv_(13, 0.0), manager_(hv_) {}

  hv::Hypervisor hv_;
  Manager manager_;
};

TEST_F(ManagerTest, TestAndDummyVmsAreDistinctAndIdempotent) {
  hv::Domain& test_vm = manager_.test_vm();
  hv::Domain& dummy_vm = manager_.dummy_vm();
  EXPECT_NE(test_vm.id(), dummy_vm.id());
  EXPECT_EQ(test_vm.role(), hv::DomainRole::kTest);
  EXPECT_EQ(dummy_vm.role(), hv::DomainRole::kDummy);
  EXPECT_EQ(&manager_.test_vm(), &test_vm);
  EXPECT_EQ(&manager_.dummy_vm(), &dummy_vm);
}

TEST_F(ManagerTest, RecordStoresBehaviorInDb) {
  const auto& behavior = manager_.record_workload(Workload::kCpuBound, 100, 5);
  EXPECT_EQ(behavior.size(), 100u);
  EXPECT_NE(manager_.db().behavior("CPU-bound"), nullptr);
  EXPECT_EQ(manager_.mode(), Manager::Mode::kOff);
}

TEST_F(ManagerTest, SubmitSingleSeed) {
  const auto& behavior = manager_.record_workload(Workload::kIdle, 20, 5);
  ASSERT_TRUE(manager_.enable_replay());
  const auto outcome = manager_.submit_seed(behavior[0].seed);
  EXPECT_TRUE(outcome.entered);
  EXPECT_EQ(outcome.dispatched_reason, behavior[0].seed.reason);
}

TEST_F(ManagerTest, ReplayAndRecordProducesAlignedMetrics) {
  const auto& behavior = manager_.record_workload(Workload::kOsBoot, 200, 5);
  const auto replayed = manager_.replay_and_record(behavior);
  EXPECT_FALSE(replayed.aborted);
  ASSERT_EQ(replayed.behavior.size(), behavior.size());
  ASSERT_EQ(replayed.outcomes.size(), behavior.size());

  const auto report = analyze_accuracy(hv_.coverage(), behavior, replayed.behavior);
  EXPECT_GE(report.coverage_fit_pct, 85.0);
}

TEST_F(ManagerTest, SnapshotRevertRestoresTestVm) {
  (void)manager_.test_vm();
  manager_.save_test_snapshot();
  manager_.record_workload(Workload::kOsBoot, 150, 5);  // mutates the VM
  const auto cr0_after = manager_.test_vm().vcpu().regs.cr0;
  manager_.revert_test_vm();
  const auto cr0_reverted = manager_.test_vm().vcpu().regs.cr0;
  EXPECT_NE(cr0_after, cr0_reverted);
  EXPECT_EQ(manager_.test_vm().vcpu().mode_cache, vcpu::CpuMode::kMode1);
}

TEST_F(ManagerTest, DummyVmCanStartFromTestSnapshot) {
  manager_.record_workload(Workload::kOsBoot, 150, 5);
  manager_.save_test_snapshot();  // a booted state
  manager_.revert_dummy_to_test_snapshot();
  EXPECT_NE(manager_.dummy_vm().vcpu().mode_cache, vcpu::CpuMode::kMode1);
}

TEST_F(ManagerTest, ResetDummyVmGivesFreshState) {
  manager_.record_workload(Workload::kOsBoot, 150, 5);
  manager_.save_test_snapshot();
  manager_.revert_dummy_to_test_snapshot();
  manager_.reset_dummy_vm();
  EXPECT_EQ(manager_.dummy_vm().vcpu().mode_cache, vcpu::CpuMode::kMode1);
}

TEST_F(ManagerTest, ModeTrajectoryWalksFigureEight) {
  const auto& boot = manager_.record_workload(Workload::kOsBoot, 300, 5);
  const auto trajectory = mode_trajectory(boot);
  ASSERT_FALSE(trajectory.empty());
  // The boot walks Mode2 -> Mode3 -> Mode4 -> Mode6 (Fig 8's staircase).
  std::vector<vcpu::CpuMode> distinct;
  for (const auto& s : trajectory) {
    if (distinct.empty() || distinct.back() != s.mode) distinct.push_back(s.mode);
  }
  EXPECT_GE(distinct.size(), 4u);
  EXPECT_EQ(distinct.front(), vcpu::CpuMode::kMode2);
}

TEST_F(ManagerTest, EfficiencyReportShapes) {
  const auto report = analyze_efficiency(3'600'000'000ULL, 360'000'000ULL, 5000);
  EXPECT_DOUBLE_EQ(report.real_seconds, 1.0);
  EXPECT_DOUBLE_EQ(report.replay_seconds, 0.1);
  EXPECT_NEAR(report.pct_decrease, 90.0, 0.01);
  EXPECT_NEAR(report.speedup, 10.0, 0.01);
  EXPECT_NEAR(report.replay_exits_per_sec, 50'000.0, 1.0);
}

// --- The hypercall interface, invoked as the CLI would (via VMCALL
// from Dom0's vCPU context). ---

class HypercallTest : public ManagerTest {
 protected:
  std::uint64_t call(std::uint64_t a0, std::uint64_t a1 = 0, std::uint64_t a2 = 0) {
    hv::Domain& dom0 = *hv_.domain(0);
    const std::uint64_t args[3] = {a0, a1, a2};
    return hv_.dispatch_hypercall(hv::kHypercallVmcsFuzzing, dom0, dom0.vcpu(), args);
  }
};

TEST_F(HypercallTest, StatusReflectsMode) {
  EXPECT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kStatus)),
            static_cast<std::uint64_t>(Manager::Mode::kOff));
  ASSERT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kEnableRecord)), 0u);
  EXPECT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kStatus)),
            static_cast<std::uint64_t>(Manager::Mode::kRecord));
  EXPECT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kDisableRecord)), 0u);
}

TEST_F(HypercallTest, RecordSessionCapturesSeeds) {
  ASSERT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kEnableRecord)), 0u);
  // Drive some test-VM exits while the hypercall-recorder is attached.
  hv::Domain& test_vm = manager_.test_vm();
  guest::GuestProgram program(Workload::kCpuBound, 5, 50);
  for (int i = 0; i < 50; ++i) {
    const auto exit = program.next(hv_, test_vm, test_vm.vcpu());
    hv_.process_exit(test_vm, test_vm.vcpu(), exit);
  }
  ASSERT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kDisableRecord)), 0u);
  // NOTE: without finish_exit pairing the hypercall recorder stores the
  // trace under "hypercall-session"; seeds counted may be 0 since
  // finalize happens per process_exit outcome only in driver loops.
  EXPECT_NE(manager_.db().behavior("hypercall-session"), nullptr);
}

TEST_F(HypercallTest, FetchSeedCopiesSerializedSeedToGuest) {
  // Build a session trace directly through the DB for a deterministic
  // fetch test.
  VmBehavior behavior;
  RecordedExit rec;
  rec.seed.reason = vtx::ExitReason::kRdtsc;
  rec.seed.items.push_back(SeedItem{SeedItemKind::kGpr, 0, 0x77});
  behavior.push_back(rec);
  manager_.db().store("hypercall-session", behavior);

  const std::uint64_t dest_gpa = 0x9000;
  const auto len = call(static_cast<std::uint64_t>(IrisCmd::kFetchSeed), 0, dest_gpa);
  ASSERT_GT(len, 0u);
  std::vector<std::uint8_t> buf(len);
  ASSERT_TRUE(hv_.copy_from_guest(*hv_.domain(0), dest_gpa, buf));
  ByteReader r(buf);
  const auto seed = VmSeed::deserialize(r);
  ASSERT_TRUE(seed.ok());
  EXPECT_EQ(seed.value().reason, vtx::ExitReason::kRdtsc);
  EXPECT_EQ(seed.value().items[0].value, 0x77u);
}

TEST_F(HypercallTest, SubmitSeedFromGuestMemory) {
  const auto& behavior = manager_.record_workload(Workload::kIdle, 20, 5);
  ByteWriter w;
  behavior[0].seed.serialize(w);
  const std::uint64_t src_gpa = 0xA000;
  ASSERT_TRUE(hv_.copy_to_guest(*hv_.domain(0), src_gpa, w.data()));
  ASSERT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kEnableReplay)), 0u);
  EXPECT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kSubmitSeed), src_gpa, w.size()),
            0u);
}

TEST_F(HypercallTest, MalformedCommandsReturnErrno) {
  EXPECT_EQ(static_cast<std::int64_t>(call(999)), -22);  // -EINVAL
  EXPECT_EQ(static_cast<std::int64_t>(
                call(static_cast<std::uint64_t>(IrisCmd::kFetchSeed), 0, 0)),
            -34);  // -ERANGE: no session
  // Submitting garbage bytes fails parsing.
  const std::uint64_t gpa = 0xB000;
  const std::array<std::uint8_t, 4> junk = {9, 9, 9, 9};
  ASSERT_TRUE(hv_.copy_to_guest(*hv_.domain(0), gpa, junk));
  ASSERT_EQ(call(static_cast<std::uint64_t>(IrisCmd::kEnableReplay)), 0u);
  EXPECT_EQ(static_cast<std::int64_t>(
                call(static_cast<std::uint64_t>(IrisCmd::kSubmitSeed), gpa, 4)),
            -22);
}

// --- Batched seed hand-off (§IX batching; ROADMAP "Batched seed
// hand-off"): Manager::submit_batch_into must produce outcomes
// identical to one-by-one submission, while actually amortizing the
// per-seed fetch cost across each batch.

void expect_outcomes_identical(const hv::HandleOutcome& a,
                               const hv::HandleOutcome& b, std::size_t index) {
  EXPECT_EQ(a.entered, b.entered) << "seed " << index;
  EXPECT_EQ(a.failure, b.failure) << "seed " << index;
  EXPECT_EQ(a.cause, b.cause) << "seed " << index;
  EXPECT_EQ(a.failure_reason, b.failure_reason) << "seed " << index;
  EXPECT_EQ(a.dispatched_reason, b.dispatched_reason) << "seed " << index;
  EXPECT_EQ(a.coverage.blocks, b.coverage.blocks) << "seed " << index;
  EXPECT_EQ(a.coverage.loc, b.coverage.loc) << "seed " << index;
  EXPECT_EQ(a.cycles, b.cycles) << "seed " << index;
  EXPECT_EQ(a.vmreads, b.vmreads) << "seed " << index;
  EXPECT_EQ(a.vmwrites, b.vmwrites) << "seed " << index;
  EXPECT_EQ(a.injected_vector, b.injected_vector) << "seed " << index;
}

class BatchedSubmitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchedSubmitTest, BatchedMatchesOneByOne) {
  const std::size_t batch_size = GetParam();
  Replayer::Config config;
  config.batch_size = batch_size;

  // Two identically-constructed stacks: recording is a pure function of
  // (workload, seed), so both replay the same behavior.
  hv::Hypervisor hv_loop(13, 0.0), hv_batch(13, 0.0);
  Manager loop_manager(hv_loop), batch_manager(hv_batch);
  const VmBehavior& loop_behavior =
      loop_manager.record_workload(Workload::kCpuBound, 60, 5);
  const VmBehavior& batch_behavior =
      batch_manager.record_workload(Workload::kCpuBound, 60, 5);

  std::vector<VmSeed> seeds;
  for (const auto& rec : loop_behavior) seeds.push_back(rec.seed);

  ASSERT_TRUE(loop_manager.enable_replay(config));
  std::vector<hv::HandleOutcome> one_by_one(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    loop_manager.submit_seed_into(seeds[i], one_by_one[i]);
  }

  std::vector<VmSeed> batch_seeds;
  for (const auto& rec : batch_behavior) batch_seeds.push_back(rec.seed);
  ASSERT_TRUE(batch_manager.enable_replay(config));
  std::vector<hv::HandleOutcome> batched;
  batch_manager.submit_batch_into(batch_seeds, batched);

  ASSERT_EQ(batched.size(), one_by_one.size());
  for (std::size_t i = 0; i < one_by_one.size(); ++i) {
    expect_outcomes_identical(one_by_one[i], batched[i], i);
  }
  // Identical simulated-clock trajectories, not just identical
  // per-exit outcomes.
  EXPECT_EQ(hv_loop.clock().rdtsc(), hv_batch.clock().rdtsc());
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchedSubmitTest,
                         ::testing::Values(1u, 4u, 16u));

TEST(BatchedSubmit, BatchingAmortizesTheFetchCost) {
  auto replay_cycles = [](std::size_t batch_size) {
    hv::Hypervisor hv(13, 0.0);
    Manager manager(hv);
    const VmBehavior& behavior =
        manager.record_workload(Workload::kCpuBound, 80, 5);
    std::vector<VmSeed> seeds;
    for (const auto& rec : behavior) seeds.push_back(rec.seed);
    Replayer::Config config;
    config.batch_size = batch_size;
    EXPECT_TRUE(manager.enable_replay(config));
    const std::uint64_t t0 = hv.clock().rdtsc();
    std::vector<hv::HandleOutcome> outcomes;
    manager.submit_batch_into(seeds, outcomes);
    return hv.clock().rdtsc() - t0;
  };

  const std::uint64_t unbatched = replay_cycles(1);
  const std::uint64_t batched = replay_cycles(8);
  // 80 seeds at batch 8 pay 10 fetches instead of 80: the saving is
  // 70 * replay_seed_fetch cycles of simulated time.
  EXPECT_LT(batched, unbatched);
  EXPECT_GE(unbatched - batched, 60 * sim::CostModel{}.replay_seed_fetch);
}

}  // namespace
}  // namespace iris
