// Tests for the distributed campaign subsystem: grid-lease claim
// races and crash recovery, reducer merges proven byte-identical to
// single-process runs (including kill-and-reclaim), reducer conflict
// detection, and sync-epoch determinism across resume and re-shard.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/corpus_store.h"
#include "campaign/distributed.h"
#include "campaign/grid_lease.h"
#include "campaign/reducer.h"
#include "fuzz/campaign.h"
#include "iris/manager.h"

namespace iris::campaign {
namespace {

namespace fs = std::filesystem;
using fuzz::CampaignConfig;
using fuzz::CampaignRunner;
using guest::Workload;

/// Fresh scratch directory per test, wiped up front so reruns start
/// clean.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

CampaignConfig small_config() {
  CampaignConfig config;
  config.workers = 1;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

GridLeaseConfig lease_config(const fs::path& dir, const std::string& shard,
                             std::size_t cells, std::size_t range_size,
                             double ttl = 30.0) {
  GridLeaseConfig config;
  config.dir = dir.string();
  config.shard_id = shard;
  config.total_cells = cells;
  config.range_size = range_size;
  config.ttl_seconds = ttl;
  config.fingerprint = 0x5EED;
  return config;
}

/// Age a protocol file's mtime so its lease reads as stale.
void age_file(const std::string& path, double seconds) {
  const auto written = fs::last_write_time(path);
  fs::last_write_time(
      path, written - std::chrono::duration_cast<fs::file_time_type::duration>(
                          std::chrono::duration<double>(seconds)));
}

// --- Grid-lease protocol ---

TEST(GridLease, TwoShardsClaimDisjointRanges) {
  const auto dir = scratch_dir("lease-race");
  auto a = GridLease::open(lease_config(dir, "a", 12, 3));
  auto b = GridLease::open(lease_config(dir, "b", 12, 3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Interleave claim attempts: whoever claims a cell owns its whole
  // range, and the loser is denied every cell of that range.
  for (std::size_t i = 0; i < 12; ++i) {
    const bool a_first = (i / 3) % 2 == 0;
    const bool first = a_first ? a.value()->try_claim(i) : b.value()->try_claim(i);
    const bool second = a_first ? b.value()->try_claim(i) : a.value()->try_claim(i);
    EXPECT_TRUE(first) << i;
    EXPECT_FALSE(second) << i;
  }
  EXPECT_EQ(a.value()->stats().claims, 2u);
  EXPECT_EQ(b.value()->stats().claims, 2u);
  // Every cell's losing claimant was denied exactly once.
  EXPECT_EQ(a.value()->stats().denials + b.value()->stats().denials, 12u);
}

TEST(GridLease, ManyThreadsRaceOneDirectoryWithoutOverlap) {
  const auto dir = scratch_dir("lease-thread-race");
  constexpr std::size_t kCells = 64;
  constexpr std::size_t kShards = 4;
  std::vector<std::unique_ptr<GridLease>> gates;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto gate =
        GridLease::open(lease_config(dir, "t" + std::to_string(s), kCells, 4));
    ASSERT_TRUE(gate.ok());
    gates.push_back(std::move(gate).take());
  }
  std::vector<std::vector<std::size_t>> won(kShards);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kShards; ++s) {
    threads.emplace_back([&, s] {
      for (std::size_t i = 0; i < kCells; ++i) {
        if (gates[s]->try_claim(i)) won[s].push_back(i);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<int> owners(kCells, 0);
  std::size_t total = 0;
  for (const auto& cells : won) {
    for (const std::size_t i : cells) {
      ++owners[i];
      ++total;
    }
  }
  EXPECT_EQ(total, kCells);  // every cell claimed...
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(owners[i], 1) << "cell " << i;  // ...by exactly one shard
  }
}

TEST(GridLease, StaleLeaseReclaimedFreshOneIsNot) {
  const auto dir = scratch_dir("lease-stale");
  auto dead = GridLease::open(lease_config(dir, "dead", 6, 2, 0.5));
  ASSERT_TRUE(dead.ok());
  ASSERT_TRUE(dead.value()->try_claim(0));

  auto live = GridLease::open(lease_config(dir, "live", 6, 2, 0.5));
  ASSERT_TRUE(live.ok());
  EXPECT_FALSE(live.value()->try_claim(0));  // fresh lease: hands off

  age_file(dead.value()->lease_path(0), 1.0);
  EXPECT_TRUE(live.value()->try_claim(0));  // stale: reclaimed
  EXPECT_EQ(live.value()->stats().reclaims, 1u);
  // The reclaimer now owns the range; the (zombie) original shard holds
  // a cached claim, which is exactly the both-run-it case the reducer's
  // checksum dedup exists for.
}

TEST(GridLease, OwnLeaseAdoptedInstantlyAfterRestart) {
  const auto dir = scratch_dir("lease-adopt");
  {
    auto first = GridLease::open(lease_config(dir, "me", 6, 2));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value()->try_claim(0));
  }  // "killed" without completing the range
  auto relaunched = GridLease::open(lease_config(dir, "me", 6, 2));
  ASSERT_TRUE(relaunched.ok());
  EXPECT_TRUE(relaunched.value()->try_claim(0));  // no TTL wait on own lease
  EXPECT_EQ(relaunched.value()->stats().adoptions, 1u);
  EXPECT_EQ(relaunched.value()->stats().reclaims, 0u);
}

TEST(GridLease, CompletedRangePublishesDoneMarkerAndStaysFinal) {
  const auto dir = scratch_dir("lease-done");
  auto a = GridLease::open(lease_config(dir, "a", 4, 2, 0.1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a.value()->try_claim(0));
  a.value()->completed(0);
  EXPECT_TRUE(fs::exists(a.value()->lease_path(0)));
  a.value()->completed(1);
  // Lease retired into the done marker atomically.
  EXPECT_FALSE(fs::exists(a.value()->lease_path(0)));
  EXPECT_TRUE(fs::exists(a.value()->done_path(0)));

  // Done is final: no TTL ever reopens it.
  auto b = GridLease::open(lease_config(dir, "b", 4, 2, 0.1));
  ASSERT_TRUE(b.ok());
  age_file(a.value()->done_path(0), 10.0);
  EXPECT_FALSE(b.value()->try_claim(0));
  EXPECT_FALSE(b.value()->try_claim(1));
}

TEST(GridLease, ForeignCampaignOrGeometryRejected) {
  const auto dir = scratch_dir("lease-foreign");
  ASSERT_TRUE(GridLease::open(lease_config(dir, "a", 12, 3)).ok());

  auto foreign = lease_config(dir, "b", 12, 3);
  foreign.fingerprint = 0xBAD;
  EXPECT_FALSE(GridLease::open(foreign).ok());

  auto reshaped = lease_config(dir, "b", 12, 4);
  EXPECT_FALSE(GridLease::open(reshaped).ok());

  EXPECT_TRUE(GridLease::open(lease_config(dir, "b", 12, 3)).ok());
}

// --- Distributed runs reduce to the single-process bytes ---

ShardConfig shard_config(const fs::path& dir, const std::string& id,
                         std::size_t advisory) {
  ShardConfig shard;
  shard.lease_dir = dir.string();
  shard.shard_id = id;
  shard.range_size = 1;  // max interleaving between racing shards
  shard.advisory_shards = advisory;
  return shard;
}

class ShardCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountTest, ConcurrentShardsReduceToSingleProcessBytes) {
  const std::size_t shards = GetParam();
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto reference =
      canonical_result_bytes(CampaignRunner(small_config()).run(grid));

  const auto dir = scratch_dir("shards-" + std::to_string(shards));
  std::vector<std::thread> threads;
  std::vector<int> failures(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    threads.emplace_back([&, s] {
      auto run = DistributedCampaign(
                     shard_config(dir, "s" + std::to_string(s), shards),
                     small_config())
                     .run(grid);
      if (!run.ok() || !run.value().result.persistence_error.empty()) {
        failures[s] = 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t s = 0; s < shards; ++s) EXPECT_EQ(failures[s], 0) << s;

  const auto journals = DistributedCampaign::shard_journals(dir.string());
  ASSERT_EQ(journals.size(), shards);
  auto reduced = reduce_journals(journals, grid, small_config());
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_TRUE(reduced.value().result.complete);
  EXPECT_TRUE(reduced.value().missing.empty());
  EXPECT_EQ(canonical_result_bytes(reduced.value().result), reference);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(DistributedCampaign, KilledShardReclaimedMidRunStaysByteIdentical) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto reference =
      canonical_result_bytes(CampaignRunner(small_config()).run(grid));
  const auto dir = scratch_dir("kill-reclaim");

  // Shard A "dies" after 5 cells: the cell budget stops it exactly the
  // way SIGKILL would — journal flushed per cell, leases left behind.
  auto dying = small_config();
  dying.cell_budget = 5;
  auto victim = shard_config(dir, "victim", 2);
  victim.lease_ttl_seconds = 0.2;
  auto first = DistributedCampaign(victim, dying).run(grid);
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_FALSE(first.value().result.complete);

  // Its unfinished leases go stale...
  for (const auto& dirent : fs::directory_iterator(dir)) {
    const std::string name = dirent.path().filename().string();
    if (name.starts_with("lease-")) age_file(dirent.path().string(), 1.0);
  }

  // ...and a surviving shard reclaims them and finishes the grid.
  auto survivor = shard_config(dir, "survivor", 2);
  survivor.lease_ttl_seconds = 0.2;
  auto second = DistributedCampaign(survivor, small_config()).run(grid);
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_GT(second.value().lease.reclaims, 0u);

  auto reduced = reduce_journals(DistributedCampaign::shard_journals(dir.string()),
                                 grid, small_config());
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_TRUE(reduced.value().result.complete);
  EXPECT_EQ(canonical_result_bytes(reduced.value().result), reference);
}

TEST(DistributedCampaign, RelaunchedShardResumesOwnJournalAndLeases) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto reference =
      canonical_result_bytes(CampaignRunner(small_config()).run(grid));
  const auto dir = scratch_dir("relaunch");

  auto dying = small_config();
  dying.cell_budget = 4;
  auto first = DistributedCampaign(shard_config(dir, "only", 1), dying).run(grid);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().result.complete);

  // Same shard id relaunched: journal resumed, leases adopted without
  // any TTL wait, grid finished single-handedly.
  auto second =
      DistributedCampaign(shard_config(dir, "only", 1), small_config()).run(grid);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().result.cells_resumed, 4u);

  auto reduced = reduce_journals(DistributedCampaign::shard_journals(dir.string()),
                                 grid, small_config());
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_EQ(canonical_result_bytes(reduced.value().result), reference);
}

// --- Reducer invariants ---

TEST(Reducer, DuplicateIdenticalCellsDeduplicateConflictingOnesError) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 60, 7);
  const auto config = small_config();
  const std::uint64_t fp = campaign_fingerprint(grid, config);
  const auto dir = scratch_dir("reduce-conflict");

  // Run the campaign once and journal every cell into shard A.
  auto journaled = config;
  journaled.checkpoint_path = (dir / "shard-a.ckpt").string();
  const auto result = CampaignRunner(journaled).run(grid);
  ASSERT_TRUE(result.persistence_error.empty());

  // Shard B re-journals cell 0 identically: a benign re-run.
  auto a = CampaignCheckpoint::open((dir / "shard-a.ckpt").string(), fp);
  ASSERT_TRUE(a.ok());
  auto b = CampaignCheckpoint::open((dir / "shard-b.ckpt").string(), fp);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b.value().append(a.value().cells()[0]).ok());

  const std::vector<std::string> journals = {(dir / "shard-a.ckpt").string(),
                                             (dir / "shard-b.ckpt").string()};
  auto merged = reduce_journals(journals, grid, config);
  ASSERT_TRUE(merged.ok()) << merged.error().message;
  EXPECT_EQ(merged.value().duplicate_cells, 1u);
  EXPECT_EQ(canonical_result_bytes(merged.value().result),
            canonical_result_bytes(result));

  // Shard C journals cell 1 with a different outcome: the determinism
  // contract is broken and the reduce must fail naming both shards.
  auto c = CampaignCheckpoint::open((dir / "shard-c.ckpt").string(), fp);
  ASSERT_TRUE(c.ok());
  CheckpointCell tampered = a.value().cells()[1];
  tampered.result.executed += 1;
  ASSERT_TRUE(c.value().append(tampered).ok());
  auto conflicted = reduce_journals(
      {journals[0], journals[1], (dir / "shard-c.ckpt").string()}, grid, config);
  ASSERT_FALSE(conflicted.ok());
  EXPECT_NE(conflicted.error().message.find("shard-a.ckpt"), std::string::npos);
  EXPECT_NE(conflicted.error().message.find("shard-c.ckpt"), std::string::npos);
}

TEST(Reducer, ObserverNeverTruncatesALiveJournalsTornTail) {
  const auto dir = scratch_dir("reduce-live-tail");
  const std::string path = (dir / "shard-live.ckpt").string();
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 60, 7);
  auto config = small_config();
  config.checkpoint_path = path;
  config.cell_budget = 2;
  (void)CampaignRunner(config).run(grid);

  // A live shard is mid-append: the journal ends in a half-flushed
  // record. The reducer must read around it without truncating.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn << "\x40\x00\x00\x00half-flushed";
  }
  const auto size_before = fs::file_size(path);
  auto reduced = reduce_journals({path}, grid, small_config());
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_EQ(reduced.value().cells_loaded, 2u);
  EXPECT_EQ(fs::file_size(path), size_before);  // untouched

  // The shard itself (writable open) still truncates and recovers.
  auto writer = CampaignCheckpoint::open(path, campaign_fingerprint(grid, config));
  ASSERT_TRUE(writer.ok());
  EXPECT_LT(fs::file_size(path), size_before);
  EXPECT_EQ(writer.value().cells().size(), 2u);
}

TEST(Reducer, MissingCellsReportedAsIncomplete) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 60, 7);
  auto config = small_config();
  const auto dir = scratch_dir("reduce-missing");
  config.checkpoint_path = (dir / "shard-a.ckpt").string();
  config.cell_budget = 3;
  (void)CampaignRunner(config).run(grid);

  auto reduced =
      reduce_journals({config.checkpoint_path}, grid, small_config());
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_FALSE(reduced.value().result.complete);
  EXPECT_EQ(reduced.value().missing.size(), grid.size() - 3);
}

TEST(Reducer, ForeignJournalRejectedMissingJournalNotInvented) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 60, 7);
  const auto dir = scratch_dir("reduce-foreign");
  // A journal for a different campaign (different hv seed).
  auto other = small_config();
  other.hv_seed ^= 1;
  other.checkpoint_path = (dir / "shard-a.ckpt").string();
  (void)CampaignRunner(other).run(grid);

  EXPECT_FALSE(
      reduce_journals({other.checkpoint_path}, grid, small_config()).ok());
  EXPECT_FALSE(reduce_journals({(dir / "absent.ckpt").string()}, grid,
                               small_config())
                   .ok());
  EXPECT_FALSE(fs::exists(dir / "absent.ckpt"));  // reduce never creates
}

// --- Sync-epoch determinism ---

/// A corpus store seeded with real recorded seeds (so imports actually
/// execute and contribute mutants to the synced cells).
fs::path make_corpus(const std::string& name, std::size_t seeds) {
  const auto dir = scratch_dir(name);
  CorpusStore store(dir.string());
  EXPECT_TRUE(store.init().ok());
  hv::Hypervisor hv(51, 0.0);
  Manager manager(hv);
  const VmBehavior& behavior = manager.record_workload(Workload::kCpuBound, 150, 3);
  for (std::size_t i = 0; i < std::min(seeds, behavior.size()); ++i) {
    fuzz::CorpusEntry entry;
    entry.seed = behavior[i].seed;
    EXPECT_TRUE(store.write_entry(entry).ok());
  }
  return dir;
}

TEST(SyncEpochs, ImportsChangeResultsAndStayDeterministicAcrossResume) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto corpus = make_corpus("sync-corpus", 40);

  auto synced = small_config();
  synced.corpus_dir = corpus.string();
  const auto reference = CampaignRunner(synced).run(grid);
  const auto reference_bytes = canonical_result_bytes(reference);

  // Sync must do real work: the imported seeds add executed mutants.
  const auto plain = CampaignRunner(small_config()).run(grid);
  EXPECT_GT(reference.executed, plain.executed);
  EXPECT_NE(reference_bytes, canonical_result_bytes(plain));

  // Kill a checkpointed synced run, grow the store behind its back,
  // and resume: the journaled epoch pins the original import set, so
  // the bytes still match the uninterrupted reference.
  const auto dir = scratch_dir("sync-resume");
  auto killed = synced;
  killed.checkpoint_path = (dir / "campaign.ckpt").string();
  killed.cell_budget = 5;
  const auto partial = CampaignRunner(killed).run(grid);
  ASSERT_TRUE(partial.persistence_error.empty()) << partial.persistence_error;
  EXPECT_FALSE(partial.complete);

  {
    CorpusStore store(corpus.string());
    fuzz::CorpusEntry late;
    late.seed.reason = vtx::ExitReason::kRdtsc;
    late.seed.items.push_back(SeedItem{SeedItemKind::kGpr, 3, 0xA5A5A5A5ULL});
    ASSERT_TRUE(store.write_entry(late).ok());
  }

  auto resume = synced;
  resume.checkpoint_path = killed.checkpoint_path;
  const auto resumed = CampaignRunner(resume).run(grid);
  ASSERT_TRUE(resumed.persistence_error.empty()) << resumed.persistence_error;
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.cells_resumed, 5u);
  EXPECT_EQ(canonical_result_bytes(resumed), reference_bytes);

  // A fresh (non-resumed) run sees the grown store and may diverge —
  // that is the point of recording the epoch in the journal.
  const auto fresh = CampaignRunner(synced).run(grid);
  EXPECT_NE(canonical_result_bytes(fresh), reference_bytes);
}

TEST(SyncEpochs, ShardsShareOnePinnedEpochAcrossStoreGrowth) {
  const auto grid = fuzz::make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto corpus = make_corpus("sync-shard-corpus", 40);

  auto synced = small_config();
  synced.corpus_dir = corpus.string();
  const auto reference = canonical_result_bytes(CampaignRunner(synced).run(grid));

  // The lease dir does not exist yet: epoch pinning precedes
  // GridLease::open and must create it.
  const auto dir = scratch_dir("sync-shards") / "lease";
  auto budgeted = synced;
  budgeted.cell_budget = 6;
  auto first = DistributedCampaign(shard_config(dir, "s0", 2), budgeted).run(grid);
  ASSERT_TRUE(first.ok()) << first.error().message;

  // The store grows between the two shards' arrivals; the epoch file in
  // the lease dir keeps shard s1 on the original import set.
  {
    CorpusStore store(corpus.string());
    fuzz::CorpusEntry late;
    late.seed.reason = vtx::ExitReason::kCpuid;
    late.seed.items.push_back(SeedItem{SeedItemKind::kGpr, 1, 0x1234ULL});
    ASSERT_TRUE(store.write_entry(late).ok());
  }
  for (const auto& dirent : fs::directory_iterator(dir)) {
    const std::string name = dirent.path().filename().string();
    if (name.starts_with("lease-")) age_file(dirent.path().string(), 120.0);
  }
  auto second = DistributedCampaign(shard_config(dir, "s1", 2), synced).run(grid);
  ASSERT_TRUE(second.ok()) << second.error().message;

  auto reduced = reduce_journals(DistributedCampaign::shard_journals(dir.string()),
                                 grid, synced);
  ASSERT_TRUE(reduced.ok()) << reduced.error().message;
  EXPECT_TRUE(reduced.value().result.complete);
  EXPECT_EQ(canonical_result_bytes(reduced.value().result), reference);
}

TEST(SyncEpochs, EpochRecordSurvivesJournalRoundTrip) {
  const auto dir = scratch_dir("epoch-roundtrip");
  const std::string path = (dir / "campaign.ckpt").string();
  SyncEpochRecord record;
  record.epoch = 1;
  VmSeed seed;
  seed.reason = vtx::ExitReason::kHlt;
  seed.items.push_back(SeedItem{SeedItemKind::kVmcsField, 7, 0xFEED});
  record.imports.push_back(seed);

  auto ckpt = CampaignCheckpoint::open(path, 0x77);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_TRUE(ckpt.value().append_epoch(record).ok());

  auto reopened = CampaignCheckpoint::open(path, 0x77);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value().epochs().size(), 1u);
  EXPECT_EQ(reopened.value().epochs()[0].epoch, 1u);
  ASSERT_EQ(reopened.value().epochs()[0].imports.size(), 1u);
  EXPECT_EQ(reopened.value().epochs()[0].imports[0], seed);

  // Corrupt truncations of the epoch payload must parse-fail cleanly.
  ByteWriter w;
  serialize_sync_epoch(record, w);
  for (std::size_t len = 0; len < w.size(); ++len) {
    ByteReader r(std::span(w.data()).first(len));
    auto parsed = deserialize_sync_epoch(r);
    EXPECT_TRUE(!parsed.ok() || !r.exhausted()) << len;
  }
}

}  // namespace
}  // namespace iris::campaign
