// Tests for the HVM instruction emulator — the component whose
// guest-memory dependence drives the paper's replay divergences.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>

#include "guest/guest_ops.h"
#include "hv/emulate.h"
#include "hv/hypervisor.h"
#include "vcpu/vmcs_sync.h"

namespace iris::hv {
namespace {

using vcpu::Gpr;
using vtx::VmcsField;

class EmulateTest : public ::testing::Test {
 protected:
  EmulateTest() : hv_(1, 0.0) {
    dom_ = &hv_.create_domain(DomainRole::kTest);
    EXPECT_TRUE(hv_.launch(*dom_));
    vcpu_ = &dom_->vcpu();
    // Flat protected-mode-ish context so fetches land in low RAM.
    vcpu_->regs.segment(vcpu::SegReg::kCs).base = 0;
    vcpu_->regs.rip = 0x2000;
  }

  /// Run `body` inside a faked exit context (coverage scoped per exit).
  ExitCoverage with_exit(const std::function<void(HandlerContext&)>& body) {
    hv_.coverage().begin_exit();
    vcpu::save_guest_state(vcpu_->regs, vcpu_->vmcs);
    HandlerContext ctx(hv_, *dom_, *vcpu_);
    body(ctx);
    return hv_.coverage().end_exit();
  }

  void plant(std::initializer_list<std::uint8_t> bytes) {
    std::vector<std::uint8_t> v(bytes);
    hv_.copy_to_guest(*dom_, vcpu_->regs.rip, v);
  }

  Hypervisor hv_;
  Domain* dom_ = nullptr;
  HvVcpu* vcpu_ = nullptr;
};

TEST_F(EmulateTest, NullBytesTakeDegenerateDecode) {
  const auto cov = with_exit([](HandlerContext& ctx) {
    const auto out = emulate_insn_fetch(ctx);
    EXPECT_EQ(out.note, "null-byte decode");
  });
  EXPECT_GT(cov.loc_in(hv_.coverage(), Component::kEmulate), 0u);
}

TEST_F(EmulateTest, SystemInstructionGroupDecode) {
  plant({0x0F, 0x01});
  with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_insn_fetch(ctx).note, "system insn group");
  });
}

TEST_F(EmulateTest, DescriptorGroupVariantsTakeDistinctBlocks) {
  std::array<ExitCoverage, 6> covs;
  for (std::uint8_t variant = 0; variant < 6; ++variant) {
    plant({0x0F, 0x00, static_cast<std::uint8_t>(0xC0 | (variant << 3))});
    covs[variant] = with_exit([](HandlerContext& ctx) {
      EXPECT_EQ(emulate_insn_fetch(ctx).note, "descriptor group");
    });
  }
  // Every variant contributes a block no other variant has.
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      EXPECT_NE(covs[static_cast<std::size_t>(a)].blocks,
                covs[static_cast<std::size_t>(b)].blocks);
    }
  }
}

TEST_F(EmulateTest, ReservedDescriptorEncodingIsUdPath) {
  plant({0x0F, 0x00, 0xF0});  // reg = 6: reserved
  const auto cov = with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_insn_fetch(ctx).note, "descriptor group");
  });
  EXPECT_TRUE(std::find(cov.blocks.begin(), cov.blocks.end(),
                        pack_block(Component::kEmulate, 17)) != cov.blocks.end());
}

TEST_F(EmulateTest, MovGroupBranchesOnModrm) {
  plant({0x8B, 0xC1});  // register-direct
  const auto direct = with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_insn_fetch(ctx).note, "mov group");
  });
  plant({0x8B, 0x01});  // memory operand
  const auto memory = with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_insn_fetch(ctx).note, "mov group");
  });
  EXPECT_NE(direct.blocks, memory.blocks);
}

TEST_F(EmulateTest, StringOutCopiesBytesToDevice) {
  const char msg[] = "AB";
  hv_.copy_to_guest(*dom_, 0x8000,
                    std::span(reinterpret_cast<const std::uint8_t*>(msg), 2));
  vcpu_->vmcs.hw_write(VmcsField::kIoRcx, 2);
  vcpu_->vmcs.hw_write(VmcsField::kIoRsi, 0x8000);
  IoQual qual;
  qual.port = mem::kPortSerialCom1;
  qual.string = true;
  qual.rep = true;
  qual.size = 1;
  with_exit([&qual](HandlerContext& ctx) {
    const auto out = emulate_string_io(ctx, qual);
    EXPECT_TRUE(out.ok);
    EXPECT_GE(out.steps, 2u);
  });
}

TEST_F(EmulateTest, StringInWritesGuestMemory) {
  vcpu_->vmcs.hw_write(VmcsField::kIoRcx, 4);
  vcpu_->vmcs.hw_write(VmcsField::kIoRdi, 0x8800);
  IoQual qual;
  qual.port = mem::kPortKbdStatus;
  qual.string = true;
  qual.rep = true;
  qual.in = true;
  qual.size = 1;
  with_exit([&qual](HandlerContext& ctx) {
    EXPECT_TRUE(emulate_string_io(ctx, qual).ok);
  });
  std::array<std::uint8_t, 4> buf{};
  hv_.copy_from_guest(*dom_, 0x8800, buf);
  for (const auto b : buf) EXPECT_EQ(b, 0x1C);  // kbd status value
}

TEST_F(EmulateTest, StringIoRepCountClampedPerExit) {
  vcpu_->vmcs.hw_write(VmcsField::kIoRcx, 100'000);
  vcpu_->vmcs.hw_write(VmcsField::kIoRsi, 0x8000);
  IoQual qual;
  qual.port = mem::kPortSerialCom1;
  qual.string = true;
  qual.rep = true;
  qual.size = 1;
  with_exit([&qual](HandlerContext& ctx) {
    EXPECT_LE(emulate_string_io(ctx, qual).steps, 64u);  // Xen's burst clamp
  });
}

TEST_F(EmulateTest, StringOutFaultsOnUnmappedBuffer) {
  vcpu_->vmcs.hw_write(VmcsField::kIoRcx, 2);
  vcpu_->vmcs.hw_write(VmcsField::kIoRsi, 1ULL << 40);  // beyond RAM
  IoQual qual;
  qual.port = mem::kPortSerialCom1;
  qual.string = true;
  qual.rep = true;
  qual.size = 1;
  with_exit([&qual](HandlerContext& ctx) {
    const auto out = emulate_string_io(ctx, qual);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.note, "outs: guest buffer fault");
  });
}

TEST_F(EmulateTest, MmioUnclaimedReadsAllOnes) {
  with_exit([this](HandlerContext& ctx) {
    EptQual qual;
    qual.read = true;
    emulate_mmio(ctx, 0x30000000, qual);
    EXPECT_EQ(vcpu_->gpr(Gpr::kRax), ~0ULL);
  });
}

TEST_F(EmulateTest, MmioRoutedToRegisteredDevice) {
  dom_->mmio().register_range(0x20000000, 0x1000, "testdev",
                              [](std::uint64_t, bool, std::uint8_t,
                                 std::uint64_t) -> mem::IoResult {
                                return {true, 0x1234};
                              });
  with_exit([this](HandlerContext& ctx) {
    EptQual qual;
    qual.read = true;
    emulate_mmio(ctx, 0x20000000, qual);
    EXPECT_EQ(vcpu_->gpr(Gpr::kRax), 0x1234u);
  });
}

TEST_F(EmulateTest, GdtValidationLiveVsZeroMemory) {
  // Live GDT: the code-descriptor path.
  guest::install_flat_gdt(hv_, *dom_, *vcpu_, 0x1000);
  vcpu::save_guest_state(vcpu_->regs, vcpu_->vmcs);
  with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_validate_gdt(ctx).note, "code descriptor ok");
  });
  // Zeroed GDT memory (the dummy VM's view): the not-present path.
  const std::array<std::uint8_t, 24> zeros{};
  hv_.copy_to_guest(*dom_, 0x1000, zeros);
  with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_validate_gdt(ctx).note, "descriptor not present");
  });
}

TEST_F(EmulateTest, GdtUnreadableWhenLimitTooSmall) {
  vcpu_->regs.gdtr = {0x1000, 7};  // room for the null descriptor only
  vcpu::save_guest_state(vcpu_->regs, vcpu_->vmcs);
  with_exit([](HandlerContext& ctx) {
    const auto out = emulate_validate_gdt(ctx);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.note, "gdt unreadable");
  });
}

TEST_F(EmulateTest, DataDescriptorWhereCodeExpected) {
  const std::array<std::uint8_t, 16> gdt = {
      0,    0,    0, 0, 0, 0,    0,    0,  // null
      0xFF, 0xFF, 0, 0, 0, 0x92, 0xCF, 0,  // data descriptor at 0x08
  };
  hv_.copy_to_guest(*dom_, 0x1000, gdt);
  vcpu_->regs.gdtr = {0x1000, 15};
  vcpu::save_guest_state(vcpu_->regs, vcpu_->vmcs);
  with_exit([](HandlerContext& ctx) {
    EXPECT_EQ(emulate_validate_gdt(ctx).note, "data descriptor");
  });
}

}  // namespace
}  // namespace iris::hv
