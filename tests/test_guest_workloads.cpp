// Tests for the synthetic guest workload generators: trace shapes must
// match the paper's Fig 4/5 characterization.
#include <gtest/gtest.h>

#include <map>

#include "guest/workload.h"
#include "hv/hypervisor.h"
#include "vtx/entry_checks.h"

namespace iris::guest {
namespace {

using vtx::ExitReason;

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : hv_(1, 0.0) {
    dom_ = &hv_.create_domain(hv::DomainRole::kTest);
    EXPECT_TRUE(hv_.launch(*dom_));
  }

  std::map<ExitReason, int> reason_histogram(Workload w, std::uint64_t n,
                                             std::uint64_t seed = 42) {
    GuestProgram program(w, seed, n);
    const auto trace = run_workload(hv_, *dom_, dom_->vcpu(), program, n);
    EXPECT_EQ(trace.size(), n) << "workload crashed: " << to_string(w);
    std::map<ExitReason, int> hist;
    for (const auto& rec : trace) ++hist[rec.reason];
    return hist;
  }

  hv::Hypervisor hv_;
  hv::Domain* dom_ = nullptr;
};

TEST_F(WorkloadTest, NamesRoundTrip) {
  for (int i = 0; i < kNumWorkloads; ++i) {
    const auto w = static_cast<Workload>(i);
    EXPECT_EQ(workload_from_string(to_string(w)), w);
  }
  EXPECT_FALSE(workload_from_string("nope"));
}

TEST_F(WorkloadTest, AllWorkloadsRunToCompletionWithoutCrashing) {
  for (int i = 0; i < kNumWorkloads; ++i) {
    GuestProgram program(static_cast<Workload>(i), 7, 600);
    hv::Hypervisor hv(1, 0.0);
    hv::Domain& dom = hv.create_domain(hv::DomainRole::kTest);
    ASSERT_TRUE(hv.launch(dom));
    const auto trace = run_workload(hv, dom, dom.vcpu(), program, 600);
    EXPECT_EQ(trace.size(), 600u) << to_string(static_cast<Workload>(i));
    EXPECT_FALSE(hv.failures().host_is_down());
  }
}

TEST_F(WorkloadTest, BootIsDominatedByIoAndCrAccess) {
  const auto hist = reason_histogram(Workload::kOsBoot, 2000);
  const int io = hist.count(ExitReason::kIoInstruction)
                     ? hist.at(ExitReason::kIoInstruction)
                     : 0;
  const int cr =
      hist.count(ExitReason::kCrAccess) ? hist.at(ExitReason::kCrAccess) : 0;
  // Fig 5: I/O instructions and CR accesses dominate OS_BOOT.
  EXPECT_GT(io, 2000 * 0.3);
  EXPECT_GT(cr, 2000 * 0.08);
  EXPECT_GT(io + cr, 2000 * 0.5);
}

TEST_F(WorkloadTest, SteadyWorkloadsAreMostlyRdtsc) {
  // Fig 5: ~80% of CPU/MEM/IO-bound and IDLE exits are RDTSC.
  for (const auto w : {Workload::kCpuBound, Workload::kMemBound,
                       Workload::kIoBound, Workload::kIdle}) {
    const auto hist = reason_histogram(w, 2000);
    const int rdtsc =
        hist.count(ExitReason::kRdtsc) ? hist.at(ExitReason::kRdtsc) : 0;
    EXPECT_GT(rdtsc, 2000 * 0.6) << to_string(w);
    EXPECT_LT(rdtsc, 2000 * 0.9) << to_string(w);
  }
}

TEST_F(WorkloadTest, OnlyIdleHasHlt) {
  const auto idle = reason_histogram(Workload::kIdle, 2000);
  EXPECT_GT(idle.count(ExitReason::kHlt) ? idle.at(ExitReason::kHlt) : 0, 50);
  const auto cpu = reason_histogram(Workload::kCpuBound, 2000, 43);
  EXPECT_EQ(cpu.count(ExitReason::kHlt) ? cpu.at(ExitReason::kHlt) : 0, 0);
}

TEST_F(WorkloadTest, IoBoundHasMoreIoThanCpuBound) {
  const auto io_hist = reason_histogram(Workload::kIoBound, 2000);
  const auto cpu_hist = reason_histogram(Workload::kCpuBound, 2000, 44);
  const auto get = [](const auto& h, ExitReason r) {
    return h.count(r) ? h.at(r) : 0;
  };
  EXPECT_GT(get(io_hist, ExitReason::kIoInstruction),
            4 * std::max(get(cpu_hist, ExitReason::kIoInstruction), 1));
}

TEST_F(WorkloadTest, MemBoundHasMoreEptViolations) {
  const auto mem_hist = reason_histogram(Workload::kMemBound, 2000);
  const auto idle_hist = reason_histogram(Workload::kIdle, 2000, 45);
  const auto get = [](const auto& h, ExitReason r) {
    return h.count(r) ? h.at(r) : 0;
  };
  EXPECT_GT(get(mem_hist, ExitReason::kEptViolation),
            get(idle_hist, ExitReason::kEptViolation));
}

TEST_F(WorkloadTest, BiosPrefixScalesWithPlannedLength) {
  GuestProgram small(Workload::kOsBoot, 1, 500);
  GuestProgram large(Workload::kOsBoot, 1, 50'000);
  EXPECT_TRUE(small.in_bios_stage());
  EXPECT_TRUE(large.in_bios_stage());
  // 2% of planned length.
  hv::Hypervisor hv(1, 0.0);
  hv::Domain& dom = hv.create_domain(hv::DomainRole::kTest);
  ASSERT_TRUE(hv.launch(dom));
  run_workload(hv, dom, dom.vcpu(), small, 17);  // bios_end = max(500/50, 16)
  EXPECT_FALSE(small.in_bios_stage());
}

TEST_F(WorkloadTest, BootWalksThroughOperatingModes) {
  GuestProgram program(Workload::kOsBoot, 3, 1000);
  run_workload(hv_, *dom_, dom_->vcpu(), program, 1000);
  // After boot the vCPU is in protected mode with paging + AM (Mode6).
  EXPECT_EQ(dom_->vcpu().mode_cache, vcpu::CpuMode::kMode6);
  const std::uint64_t cr0 = dom_->vcpu().vmcs.hw_read(vtx::VmcsField::kGuestCr0);
  EXPECT_TRUE(cr0 & vtx::kCr0Pe);
  EXPECT_TRUE(cr0 & vtx::kCr0Pg);
}

TEST_F(WorkloadTest, SameSeedSameTrace) {
  GuestProgram a(Workload::kCpuBound, 99, 300);
  GuestProgram b(Workload::kCpuBound, 99, 300);
  hv::Hypervisor hva(1, 0.0), hvb(1, 0.0);
  hv::Domain& doma = hva.create_domain(hv::DomainRole::kTest);
  hv::Domain& domb = hvb.create_domain(hv::DomainRole::kTest);
  ASSERT_TRUE(hva.launch(doma));
  ASSERT_TRUE(hvb.launch(domb));
  const auto ta = run_workload(hva, doma, doma.vcpu(), a, 300);
  const auto tb = run_workload(hvb, domb, domb.vcpu(), b, 300);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].reason, tb[i].reason) << i;
  }
}

TEST_F(WorkloadTest, GuestTimeDominatesForIdle) {
  // Fig 9's driver: IDLE spends enormous guest-side time between exits.
  GuestProgram idle(Workload::kIdle, 5, 100);
  const auto t0 = hv_.clock().rdtsc();
  run_workload(hv_, *dom_, dom_->vcpu(), idle, 100);
  const auto idle_cycles = hv_.clock().rdtsc() - t0;
  EXPECT_GT(idle_cycles / 100, hv_.costs().guest_idle_gap / 2);
}

TEST_F(WorkloadTest, GuestOpsEncodeArchitecturalQualifications) {
  auto& vcpu = dom_->vcpu();
  const auto io = make_io(vcpu, 0x3F8, true, 4);
  const auto qual = hv::IoQual::decode(io.qualification);
  EXPECT_EQ(qual.port, 0x3F8);
  EXPECT_TRUE(qual.in);
  EXPECT_EQ(qual.size, 4);
  EXPECT_FALSE(qual.string);

  const auto cr = make_cr_write(vcpu, 4, 0x20, vcpu::Gpr::kRbx);
  const auto cq = hv::CrAccessQual::decode(cr.qualification);
  EXPECT_EQ(cq.cr, 4);
  EXPECT_EQ(cq.access_type, hv::CrAccessQual::kMovToCr);
  EXPECT_EQ(cq.gpr, vcpu::Gpr::kRbx);
  EXPECT_EQ(vcpu.regs.read(vcpu::Gpr::kRbx), 0x20u);
}

}  // namespace
}  // namespace iris::guest
