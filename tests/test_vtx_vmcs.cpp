// Unit tests for the VT-x substrate: field encodings, VMCS access rules,
// the VMX state machine, and the preemption timer.
#include <gtest/gtest.h>

#include "vtx/exit_reason.h"
#include "vtx/vmcs.h"
#include "vtx/vmcs_fields.h"
#include "vtx/vmx.h"

namespace iris::vtx {
namespace {

TEST(VmcsFields, EncodingBitsDeriveWidthAndType) {
  EXPECT_EQ(width_of(VmcsField::kGuestCsSelector), FieldWidth::k16);
  EXPECT_EQ(width_of(VmcsField::kEptPointer), FieldWidth::k64);
  EXPECT_EQ(width_of(VmcsField::kVmExitReason), FieldWidth::k32);
  EXPECT_EQ(width_of(VmcsField::kGuestCr0), FieldWidth::kNatural);

  EXPECT_EQ(type_of(VmcsField::kPinBasedVmExecControl), FieldType::kControl);
  EXPECT_EQ(type_of(VmcsField::kVmExitReason), FieldType::kReadOnlyData);
  EXPECT_EQ(type_of(VmcsField::kGuestCr0), FieldType::kGuestState);
  EXPECT_EQ(type_of(VmcsField::kHostCr0), FieldType::kHostState);
}

TEST(VmcsFields, ReadOnlyClassification) {
  EXPECT_TRUE(is_read_only(VmcsField::kVmExitReason));
  EXPECT_TRUE(is_read_only(VmcsField::kExitQualification));
  EXPECT_TRUE(is_read_only(VmcsField::kIoRcx));
  EXPECT_TRUE(is_read_only(VmcsField::kGuestPhysicalAddress));
  EXPECT_FALSE(is_read_only(VmcsField::kGuestCr0));
  EXPECT_FALSE(is_read_only(VmcsField::kGuestRip));
  EXPECT_FALSE(is_read_only(VmcsField::kTscOffset));
}

TEST(VmcsFields, WidthMasks) {
  EXPECT_EQ(width_mask(VmcsField::kGuestCsSelector), 0xFFFFULL);
  EXPECT_EQ(width_mask(VmcsField::kGuestCsLimit), 0xFFFFFFFFULL);
  EXPECT_EQ(width_mask(VmcsField::kGuestCr0), ~0ULL);
}

TEST(VmcsFields, CompactIndexRoundTrip) {
  for (const auto field : all_fields()) {
    const auto idx = compact_index(field);
    ASSERT_TRUE(idx.has_value());
    const auto back = field_from_compact(*idx);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, field);
  }
}

TEST(VmcsFields, CompactIndexDense) {
  EXPECT_GT(kNumVmcsFields, 100);
  EXPECT_LE(kNumVmcsFields, 256);
  EXPECT_FALSE(field_from_compact(static_cast<std::uint8_t>(kNumVmcsFields)));
}

TEST(VmcsFields, NameRoundTrip) {
  for (const auto field : all_fields()) {
    const auto name = to_string(field);
    const auto back = field_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, field);
  }
}

TEST(VmcsFields, InvalidEncodingRejected) {
  EXPECT_FALSE(is_valid_field_encoding(0x9999));
  EXPECT_TRUE(is_valid_field_encoding(0x6800));  // GUEST_CR0
}

TEST(Vmcs, VmreadVmwriteRoundTrip) {
  Vmcs vmcs;
  ASSERT_TRUE(vmcs.vmwrite(VmcsField::kGuestCr0, 0x31).succeeded());
  std::uint64_t value = 0;
  ASSERT_TRUE(vmcs.vmread(VmcsField::kGuestCr0, value).succeeded());
  EXPECT_EQ(value, 0x31u);
}

TEST(Vmcs, VmwriteToReadOnlyFieldFails) {
  Vmcs vmcs;
  const auto outcome = vmcs.vmwrite(VmcsField::kVmExitReason, 5);
  EXPECT_FALSE(outcome.succeeded());
  EXPECT_EQ(outcome.error, VmInstructionError::kVmwriteReadOnlyComponent);
  EXPECT_EQ(vmcs.last_error(), VmInstructionError::kVmwriteReadOnlyComponent);
}

TEST(Vmcs, WidthMaskingOnWrite) {
  Vmcs vmcs;
  ASSERT_TRUE(vmcs.vmwrite(VmcsField::kGuestCsSelector, 0xABCD1234).succeeded());
  EXPECT_EQ(vmcs.hw_read(VmcsField::kGuestCsSelector), 0x1234u);
}

TEST(Vmcs, HwWriteBypassesReadOnlyCheck) {
  Vmcs vmcs;
  vmcs.hw_write(VmcsField::kVmExitReason, 28);
  EXPECT_EQ(vmcs.hw_read(VmcsField::kVmExitReason), 28u);
}

TEST(Vmcs, UnwrittenFieldsReadZero) {
  const Vmcs vmcs;
  EXPECT_EQ(vmcs.hw_read(VmcsField::kGuestRip), 0u);
}

TEST(Vmcs, ReadHookInterposesValue) {
  Vmcs vmcs;
  vmcs.hw_write(VmcsField::kVmExitReason, 52);
  vmcs.set_read_hook([](VmcsField field, std::uint64_t value) -> std::uint64_t {
    if (field == VmcsField::kVmExitReason) return 16;  // pretend RDTSC
    return value;
  });
  std::uint64_t value = 0;
  ASSERT_TRUE(vmcs.vmread(VmcsField::kVmExitReason, value).succeeded());
  EXPECT_EQ(value, 16u);
  // The stored value is untouched — only the returned value changes.
  EXPECT_EQ(vmcs.hw_read(VmcsField::kVmExitReason), 52u);
}

TEST(Vmcs, WriteHookObservesMaskedValue) {
  Vmcs vmcs;
  std::uint64_t observed = 0;
  vmcs.set_write_hook(
      [&observed](VmcsField, std::uint64_t value) { observed = value; });
  ASSERT_TRUE(vmcs.vmwrite(VmcsField::kGuestEsSelector, 0xFFFF0008).succeeded());
  EXPECT_EQ(observed, 0x0008u);
}

TEST(Vmcs, ClearResetsEverything) {
  Vmcs vmcs;
  ASSERT_TRUE(vmcs.vmwrite(VmcsField::kGuestCr0, 1).succeeded());
  vmcs.set_launch_state(VmcsLaunchState::kActiveCurrentLaunched);
  vmcs.clear();
  EXPECT_EQ(vmcs.hw_read(VmcsField::kGuestCr0), 0u);
  EXPECT_EQ(vmcs.launch_state(), VmcsLaunchState::kInactiveNotCurrentClear);
}

TEST(Vmcs, SnapshotRestoreRoundTrip) {
  Vmcs vmcs;
  vmcs.hw_write(VmcsField::kGuestCr0, 0x31);
  vmcs.hw_write(VmcsField::kGuestRip, 0x7C00);
  const auto snap = vmcs.snapshot_fields();
  vmcs.clear();
  vmcs.restore_fields(snap);
  EXPECT_EQ(vmcs.hw_read(VmcsField::kGuestCr0), 0x31u);
  EXPECT_EQ(vmcs.hw_read(VmcsField::kGuestRip), 0x7C00u);
}

TEST(ExitReason, DefinedReasonHoles) {
  EXPECT_TRUE(is_defined_reason(0));
  EXPECT_TRUE(is_defined_reason(28));
  EXPECT_TRUE(is_defined_reason(68));
  EXPECT_FALSE(is_defined_reason(35));
  EXPECT_FALSE(is_defined_reason(38));
  EXPECT_FALSE(is_defined_reason(42));
  EXPECT_FALSE(is_defined_reason(65));
  EXPECT_FALSE(is_defined_reason(69));
  EXPECT_FALSE(is_defined_reason(1000));
}

TEST(ExitReason, PaperLabelsRoundTrip) {
  for (const auto reason : kFigureReasons) {
    const auto label = to_string(reason);
    const auto back = exit_reason_from_string(label);
    ASSERT_TRUE(back.has_value()) << label;
    EXPECT_EQ(*back, reason);
  }
}

class VmxStateMachine : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cpu_.vmxon().succeeded());
    write_valid_guest_state();
  }

  /// A minimal valid guest state for entry checks.
  void write_valid_guest_state() {
    vmcs_.hw_write(VmcsField::kGuestCr0, kCr0Pe | kCr0Ne | kCr0Et);
    vmcs_.hw_write(VmcsField::kGuestRflags, 0x2);
    vmcs_.hw_write(VmcsField::kVmcsLinkPointer, ~0ULL);
    vmcs_.hw_write(VmcsField::kGuestCsArBytes, 0x9B);
    vmcs_.hw_write(VmcsField::kGuestTrArBytes, 0x8B);
    vmcs_.hw_write(VmcsField::kGuestSsArBytes, 0x93);
  }

  VmxCpu cpu_;
  Vmcs vmcs_;
};

TEST_F(VmxStateMachine, LifecycleFollowsFigureOne) {
  ASSERT_TRUE(cpu_.vmclear(vmcs_).succeeded());
  EXPECT_EQ(vmcs_.launch_state(), VmcsLaunchState::kInactiveNotCurrentClear);
  // VMCLEAR wiped the guest state; rebuild the minimal valid one.
  write_valid_guest_state();

  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  EXPECT_EQ(vmcs_.launch_state(), VmcsLaunchState::kActiveCurrentClear);
  EXPECT_EQ(cpu_.current_vmcs(), &vmcs_);

  const auto entry = cpu_.vmlaunch();
  ASSERT_TRUE(entry.vmx.succeeded()) << static_cast<int>(entry.vmx.error);
  EXPECT_TRUE(entry.entered);
  EXPECT_EQ(vmcs_.launch_state(), VmcsLaunchState::kActiveCurrentLaunched);
}

TEST_F(VmxStateMachine, VmlaunchRequiresClearState) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  ASSERT_TRUE(cpu_.vmlaunch().entered);
  const auto second = cpu_.vmlaunch();
  EXPECT_FALSE(second.vmx.succeeded());
  EXPECT_EQ(second.vmx.error, VmInstructionError::kVmlaunchNonClearVmcs);
}

TEST_F(VmxStateMachine, VmresumeRequiresLaunchedState) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  const auto premature = cpu_.vmresume();
  EXPECT_FALSE(premature.vmx.succeeded());
  EXPECT_EQ(premature.vmx.error, VmInstructionError::kVmresumeNonLaunchedVmcs);

  ASSERT_TRUE(cpu_.vmlaunch().entered);
  EXPECT_TRUE(cpu_.vmresume().entered);
}

TEST_F(VmxStateMachine, InstructionsFailOutsideVmxOperation) {
  VmxCpu off;
  EXPECT_FALSE(off.vmclear(vmcs_).succeeded());
  EXPECT_FALSE(off.vmptrld(vmcs_).succeeded());
  EXPECT_FALSE(off.vmlaunch().vmx.succeeded());
}

TEST_F(VmxStateMachine, VmxoffForgetsCurrentVmcs) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  ASSERT_TRUE(cpu_.vmxoff().succeeded());
  EXPECT_EQ(cpu_.current_vmcs(), nullptr);
  EXPECT_FALSE(cpu_.in_vmx_operation());
}

TEST_F(VmxStateMachine, EntryFailsOnInvalidGuestState) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  vmcs_.hw_write(VmcsField::kGuestRflags, 0x0);  // bit 1 must be 1
  const auto entry = cpu_.vmlaunch();
  EXPECT_TRUE(entry.vmx.succeeded());
  EXPECT_FALSE(entry.entered);
  EXPECT_TRUE(entry.failed_guest_state_checks());
  // The latched exit reason carries the entry-failure flag (bit 31).
  EXPECT_EQ(vmcs_.hw_read(VmcsField::kVmExitReason),
            (1ULL << 31) | static_cast<std::uint64_t>(ExitReason::kInvalidGuestState));
}

TEST_F(VmxStateMachine, ZeroPreemptionTimerFiresAtEntry) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  vmcs_.hw_write(VmcsField::kPinBasedVmExecControl, kPinActivatePreemptionTimer);
  vmcs_.hw_write(VmcsField::kPreemptionTimerValue, 0);
  const auto entry = cpu_.vmlaunch();
  ASSERT_TRUE(entry.entered);
  EXPECT_TRUE(entry.preemption_timer_fired);
}

TEST_F(VmxStateMachine, NonzeroPreemptionTimerDoesNotFire) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  vmcs_.hw_write(VmcsField::kPinBasedVmExecControl, kPinActivatePreemptionTimer);
  vmcs_.hw_write(VmcsField::kPreemptionTimerValue, 1000);
  const auto entry = cpu_.vmlaunch();
  ASSERT_TRUE(entry.entered);
  EXPECT_FALSE(entry.preemption_timer_fired);
}

TEST_F(VmxStateMachine, TimerInactiveWithoutPinControl) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  vmcs_.hw_write(VmcsField::kPreemptionTimerValue, 0);
  const auto entry = cpu_.vmlaunch();
  ASSERT_TRUE(entry.entered);
  EXPECT_FALSE(entry.preemption_timer_fired);
}

TEST_F(VmxStateMachine, DeliverExitLatchesExitInformation) {
  ASSERT_TRUE(cpu_.vmptrld(vmcs_).succeeded());
  cpu_.deliver_exit(ExitReason::kIoInstruction, 0x1234, 2, 0, 0xFEE00000);
  EXPECT_EQ(vmcs_.hw_read(VmcsField::kVmExitReason),
            static_cast<std::uint64_t>(ExitReason::kIoInstruction));
  EXPECT_EQ(vmcs_.hw_read(VmcsField::kExitQualification), 0x1234u);
  EXPECT_EQ(vmcs_.hw_read(VmcsField::kVmExitInstructionLen), 2u);
  EXPECT_EQ(vmcs_.hw_read(VmcsField::kGuestPhysicalAddress), 0xFEE00000u);
}

}  // namespace
}  // namespace iris::vtx
