// Unit tests for the support layer: RNG determinism, statistics,
// serialization round-trips, and the ring log.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "support/result.h"
#include "support/ring_log.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "support/stats.h"

namespace iris {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.range(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(17);
  const std::array<double, 3> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.weighted_pick(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 0.001);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
}

TEST(Stats, BoxplotSummary) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto box = boxplot(xs);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  EXPECT_EQ(box.n, 9u);
  EXPECT_GT(box.q3, box.q1);
}

TEST(Stats, PercentageFit) {
  EXPECT_DOUBLE_EQ(percentage_fit(92.1, 100.0), 92.1);
  EXPECT_DOUBLE_EQ(percentage_fit(0.0, 100.0), 0.0);
}

TEST(Stats, PercentageDecrease) {
  EXPECT_NEAR(percentage_decrease(62.61, 0.22), 99.6, 0.1);
  EXPECT_NEAR(percentage_decrease(0.47, 0.27), 42.5, 0.5);
}

TEST(Stats, RankSumDetectsSeparation) {
  std::vector<double> a, b;
  for (int i = 0; i < 15; ++i) {
    a.push_back(1.0 + i * 0.01);
    b.push_back(10.0 + i * 0.01);
  }
  EXPECT_LT(rank_sum_p_value(a, b), 0.05);
}

TEST(Stats, RankSumSameDistributionNotSignificant) {
  std::vector<double> a, b;
  Rng rng(31);
  for (int i = 0; i < 15; ++i) {
    a.push_back(rng.uniform());
    b.push_back(rng.uniform());
  }
  EXPECT_GT(rank_sum_p_value(a, b), 0.05);
}

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x12345678);
  w.u64(0xDEADBEEFCAFEBABEULL);
  w.str("hello");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xCDEF);
  EXPECT_EQ(r.u32().value(), 0x12345678u);
  EXPECT_EQ(r.u64().value(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x0A0B0C0D);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x0D);
  EXPECT_EQ(w.data()[3], 0x0A);
}

TEST(Serialize, TruncatedReadFails) {
  const std::vector<std::uint8_t> bytes = {1, 2};
  ByteReader r(bytes);
  EXPECT_FALSE(r.u32().ok());
}

TEST(Serialize, Fnv1aIsStable) {
  const std::array<std::uint8_t, 3> data = {'a', 'b', 'c'};
  EXPECT_EQ(fnv1a(data), fnv1a(data));
  const std::array<std::uint8_t, 3> other = {'a', 'b', 'd'};
  EXPECT_NE(fnv1a(data), fnv1a(other));
}

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err(Error{3, "boom"});
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, 3);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(Result, VoidSpecialization) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status err(Error{1, "x"});
  EXPECT_FALSE(err.ok());
}

TEST(RingLog, AppendAndGrep) {
  RingLog log(8);
  log.append(LogLevel::kInfo, 1, "hello world");
  log.append(LogLevel::kError, 2, "bad RIP for mode 0");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.contains("bad RIP"));
  EXPECT_FALSE(log.contains("no such"));
  EXPECT_EQ(log.grep("bad RIP").size(), 1u);
}

TEST(RingLog, CapacityBound) {
  RingLog log(4);
  for (int i = 0; i < 100; ++i) {
    log.append(LogLevel::kDebug, i, "entry " + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_TRUE(log.contains("entry 99"));
  EXPECT_FALSE(log.contains("entry 1 "));
}

TEST(RingLog, LevelFilteredContains) {
  RingLog log;
  log.append(LogLevel::kDebug, 1, "needle");
  EXPECT_TRUE(log.contains("needle", LogLevel::kDebug));
  EXPECT_FALSE(log.contains("needle", LogLevel::kError));
}

}  // namespace
}  // namespace iris
