// Tests for the sharded campaign orchestrator: grid construction,
// sharding determinism (the merged coverage bitmap and deduplicated
// crash set must not depend on the worker count), crash dedup, and
// throughput accounting.
#include <gtest/gtest.h>

#include "fuzz/campaign.h"

namespace iris::fuzz {
namespace {

using guest::Workload;

CampaignConfig small_config(std::size_t workers) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

TEST(MakeTable1Grid, CoversWorkloadsReasonsAndAreas) {
  const auto grid =
      make_table1_grid({Workload::kCpuBound, Workload::kIdle}, 50, 7);
  // 2 workloads x 9 cluster reasons x 2 areas.
  ASSERT_EQ(grid.size(), 36u);
  std::size_t vmcs_cells = 0;
  for (const auto& spec : grid) {
    EXPECT_EQ(spec.mutants, 50u);
    if (spec.area == MutationArea::kVmcs) ++vmcs_cells;
  }
  EXPECT_EQ(vmcs_cells, 18u);
  // Seeds differ across cells (the run_grid mixing rule).
  EXPECT_NE(grid[0].rng_seed, grid[1].rng_seed);
  EXPECT_NE(grid[0].rng_seed, grid[2].rng_seed);
}

TEST(CampaignRunner, EmptyGridIsANoOp) {
  CampaignRunner runner(small_config(4));
  const auto result = runner.run({});
  EXPECT_TRUE(result.results.empty());
  EXPECT_TRUE(result.merged_coverage.empty());
  EXPECT_TRUE(result.unique_crashes.empty());
  EXPECT_EQ(result.executed, 0u);
}

TEST(CampaignRunner, ResultsStayInGridOrder) {
  const auto grid = make_table1_grid({Workload::kCpuBound}, 60, 7);
  CampaignRunner runner(small_config(3));
  const auto result = runner.run(grid);
  ASSERT_EQ(result.results.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(result.results[i].spec.reason, grid[i].reason);
    EXPECT_EQ(result.results[i].spec.area, grid[i].area);
    EXPECT_EQ(result.results[i].spec.rng_seed, grid[i].rng_seed);
  }
  EXPECT_EQ(result.workers_used, 3u);
}

TEST(CampaignRunner, WorkerCountClampedToGridSize) {
  std::vector<TestCaseSpec> grid{TestCaseSpec{
      Workload::kCpuBound, vtx::ExitReason::kRdtsc, MutationArea::kGpr, 50, 1}};
  CampaignRunner runner(small_config(64));
  const auto result = runner.run(grid);
  EXPECT_EQ(result.workers_used, 1u);
}

// The acceptance criterion: >= 2 worker threads produce exactly the
// same merged coverage and crash set as a single-threaded run.
TEST(CampaignRunner, DeterministicAcrossWorkerCounts) {
  const auto grid = make_table1_grid({Workload::kCpuBound}, 120, 7);
  const auto single = CampaignRunner(small_config(1)).run(grid);
  const auto sharded = CampaignRunner(small_config(3)).run(grid);

  EXPECT_EQ(single.workers_used, 1u);
  EXPECT_EQ(sharded.workers_used, 3u);

  // Identical per-cell results.
  ASSERT_EQ(single.results.size(), sharded.results.size());
  for (std::size_t i = 0; i < single.results.size(); ++i) {
    const auto& a = single.results[i];
    const auto& b = sharded.results[i];
    EXPECT_EQ(a.ran, b.ran) << "cell " << i;
    EXPECT_EQ(a.target_index, b.target_index) << "cell " << i;
    EXPECT_EQ(a.baseline_loc, b.baseline_loc) << "cell " << i;
    EXPECT_EQ(a.new_loc, b.new_loc) << "cell " << i;
    EXPECT_EQ(a.executed, b.executed) << "cell " << i;
    EXPECT_EQ(a.vm_crashes, b.vm_crashes) << "cell " << i;
    EXPECT_EQ(a.hv_crashes, b.hv_crashes) << "cell " << i;
    EXPECT_EQ(a.hangs, b.hangs) << "cell " << i;
  }

  // Identical merged coverage bitmap.
  EXPECT_EQ(single.merged_loc, sharded.merged_loc);
  EXPECT_EQ(single.merged_coverage, sharded.merged_coverage);

  // Identical deduplicated crash set, in the same bucket order.
  ASSERT_EQ(single.unique_crashes.size(), sharded.unique_crashes.size());
  for (std::size_t i = 0; i < single.unique_crashes.size(); ++i) {
    EXPECT_EQ(single.unique_crashes[i].key, sharded.unique_crashes[i].key);
    EXPECT_EQ(single.unique_crashes[i].spec_index,
              sharded.unique_crashes[i].spec_index);
    EXPECT_EQ(single.unique_crashes[i].occurrences,
              sharded.unique_crashes[i].occurrences);
  }
  EXPECT_EQ(single.total_crashes, sharded.total_crashes);
}

TEST(CampaignRunner, CampaignFindsCoverageAndCrashes) {
  const auto grid = make_table1_grid({Workload::kCpuBound}, 300, 3);
  CampaignRunner runner(small_config(2));
  const auto result = runner.run(grid);
  EXPECT_GT(result.cells_ran, 0u);
  EXPECT_LT(result.cells_ran, grid.size());  // '-' cells exist (e.g. HLT)
  EXPECT_GT(result.executed, 0u);
  EXPECT_GT(result.merged_loc, 0u);
  EXPECT_FALSE(result.merged_coverage.empty());
  // §VII-4: VMCS mutation on a deep state produces crashes.
  EXPECT_GT(result.vm_crashes + result.hv_crashes, 0u);
  EXPECT_FALSE(result.unique_crashes.empty());
}

TEST(CampaignRunner, CrashDedupBucketsByKindReasonAndField) {
  const auto grid = make_table1_grid({Workload::kCpuBound}, 400, 9);
  CampaignRunner runner(small_config(2));
  const auto result = runner.run(grid);
  ASSERT_FALSE(result.unique_crashes.empty());

  // Dedup is a partition of the archived records.
  EXPECT_LE(result.unique_crashes.size(), result.total_crashes);
  std::size_t occurrences = 0;
  for (const auto& bucket : result.unique_crashes) occurrences += bucket.occurrences;
  EXPECT_EQ(occurrences, result.total_crashes);

  for (std::size_t i = 0; i < result.unique_crashes.size(); ++i) {
    const auto& bucket = result.unique_crashes[i];
    EXPECT_NE(bucket.key.kind, hv::FailureKind::kNone);
    // The representative record matches its own bucket key.
    const SeedItem& mutated =
        bucket.first.mutant.items[bucket.first.mutation.item_index];
    EXPECT_EQ(mutated.kind, bucket.key.item_kind);
    EXPECT_EQ(mutated.encoding, bucket.key.encoding);
    EXPECT_EQ(bucket.key.kind, bucket.first.kind);
    EXPECT_LT(bucket.spec_index, grid.size());
    // Keys are unique across buckets.
    for (std::size_t j = i + 1; j < result.unique_crashes.size(); ++j) {
      EXPECT_NE(bucket.key, result.unique_crashes[j].key);
    }
  }
}

TEST(CampaignRunner, ReportsThroughput) {
  const auto grid = make_table1_grid({Workload::kCpuBound}, 100, 5);
  CampaignRunner runner(small_config(2));
  const auto result = runner.run(grid);
  EXPECT_GT(result.executed, 0u);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.mutants_per_second, 0.0);
}

}  // namespace
}  // namespace iris::fuzz
