// Tests for the emulated PC platform devices behind the PIO space.
#include <gtest/gtest.h>

#include "hv/devices.h"

namespace iris::hv {
namespace {

class DevicesTest : public ::testing::Test {
 protected:
  DevicesTest() { register_pc_platform(pio_, cov_); }

  std::uint64_t in(std::uint16_t port, std::uint8_t size = 1) {
    const auto r = pio_.access(port, false, size, 0);
    EXPECT_TRUE(r.handled) << "port " << port;
    return r.value;
  }
  void out(std::uint16_t port, std::uint64_t value, std::uint8_t size = 1) {
    EXPECT_TRUE(pio_.access(port, true, size, value).handled) << "port " << port;
  }

  CoverageMap cov_;
  mem::PioSpace pio_;
};

TEST_F(DevicesTest, AllStandardPortsClaimed) {
  for (const std::uint16_t port :
       {mem::kPortPic1Cmd, mem::kPortPic2Cmd, mem::kPortPit, mem::kPortKbd,
        mem::kPortKbdStatus, mem::kPortCmosIndex, mem::kPortIdeData,
        mem::kPortSerialCom1, mem::kPortPciConfigAddr, mem::kPortXenDebug}) {
    EXPECT_TRUE(pio_.owner(port).has_value()) << "port " << port;
  }
}

TEST_F(DevicesTest, PicInitSequence) {
  out(mem::kPortPic1Cmd, 0x11);   // ICW1
  out(mem::kPortPic1Data, 0x20);  // ICW2: vector base
  out(mem::kPortPic1Data, 0x04);  // ICW3
  out(mem::kPortPic1Data, 0x01);  // ICW4
  out(mem::kPortPic1Data, 0xFB);  // OCW1: mask
  EXPECT_EQ(in(mem::kPortPic1Data), 0xFBu);
}

TEST_F(DevicesTest, PicsAreIndependent) {
  out(mem::kPortPic1Cmd, 0x11);
  out(mem::kPortPic1Data, 0x20);
  out(mem::kPortPic1Data, 0x04);
  out(mem::kPortPic1Data, 0x01);
  out(mem::kPortPic1Data, 0xAA);
  out(mem::kPortPic2Cmd, 0x11);
  out(mem::kPortPic2Data, 0x28);
  out(mem::kPortPic2Data, 0x02);
  out(mem::kPortPic2Data, 0x01);
  out(mem::kPortPic2Data, 0x55);
  EXPECT_EQ(in(mem::kPortPic1Data), 0xAAu);
  EXPECT_EQ(in(mem::kPortPic2Data), 0x55u);
}

TEST_F(DevicesTest, PitReloadLowHighBytes) {
  out(mem::kPortPitCmd, 0x34);  // channel 0, lo/hi access
  out(mem::kPortPit, 0x9C);
  out(mem::kPortPit, 0x2E);
  EXPECT_EQ(in(mem::kPortPit), 0x9Cu);  // low byte readback
}

TEST_F(DevicesTest, KeyboardControllerReady) {
  EXPECT_EQ(in(mem::kPortKbdStatus), 0x1Cu);
  EXPECT_EQ(in(mem::kPortKbd), 0xFAu);  // ACK
}

TEST_F(DevicesTest, CmosIndexedAccess) {
  out(mem::kPortCmosIndex, 0x0D);
  EXPECT_EQ(in(mem::kPortCmosData), 0x80u);  // battery good
  out(mem::kPortCmosIndex, 0x40);
  out(mem::kPortCmosData, 0x5A);
  out(mem::kPortCmosIndex, 0x0A);
  EXPECT_EQ(in(mem::kPortCmosData), 0x26u);  // untouched register
  out(mem::kPortCmosIndex, 0x40);
  EXPECT_EQ(in(mem::kPortCmosData), 0x5Au);  // written NVRAM byte
}

TEST_F(DevicesTest, CmosPerIndexCoverageBlocks) {
  cov_.begin_exit();
  out(mem::kPortCmosIndex, 0x10);
  in(mem::kPortCmosData);
  const auto first = cov_.end_exit();
  cov_.begin_exit();
  out(mem::kPortCmosIndex, 0x20);
  in(mem::kPortCmosData);
  const auto second = cov_.end_exit();
  EXPECT_NE(first.blocks, second.blocks);  // per-register handler blocks
}

TEST_F(DevicesTest, IdeAlwaysReady) {
  EXPECT_EQ(in(mem::kPortIdeStatus), 0x50u);  // DRDY | DSC
  out(mem::kPortIdeStatus, 0xEC);             // IDENTIFY
  EXPECT_EQ(in(mem::kPortIdeStatus), 0x50u);  // still not busy
}

TEST_F(DevicesTest, SerialTransmitterEmpty) {
  EXPECT_EQ(in(mem::kPortSerialCom1 + 5), 0x60u);  // LSR: THR empty
  out(mem::kPortSerialCom1 + 3, 0x80);             // LCR: DLAB
  out(mem::kPortSerialCom1, 'x');                  // TX (discarded)
}

TEST_F(DevicesTest, PciHostBridgeVisible) {
  out(mem::kPortPciConfigAddr, 0x80000000, 4);  // bus 0 dev 0 fn 0 reg 0
  EXPECT_EQ(in(mem::kPortPciConfigData, 4), 0x12378086u);
}

TEST_F(DevicesTest, AbsentPciDevicesReadAllOnes) {
  out(mem::kPortPciConfigAddr, 0x80000000 | (5u << 11), 4);  // device 5
  EXPECT_EQ(in(mem::kPortPciConfigData, 4), 0xFFFFFFFFu);
}

TEST_F(DevicesTest, DeviceAccessesProduceCoverage) {
  cov_.begin_exit();
  out(mem::kPortPic1Cmd, 0x11);
  in(mem::kPortKbdStatus);
  const auto cov = cov_.end_exit();
  EXPECT_GT(cov.loc_in(cov_, Component::kIo), 0u);
}

}  // namespace
}  // namespace iris::hv
