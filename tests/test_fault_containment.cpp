// Tests for the fault-containment layer (PR 7): deterministic
// failpoints, the shared filesystem retry policy, sandboxed cell
// execution proven byte-identical to in-process runs, transient-fault
// recovery and persistent-fault quarantine (poisoned cells) through the
// v4 checkpoint journal and the reducer, graceful ENOSPC degradation,
// and grid-lease loss detection.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/grid_lease.h"
#include "campaign/reducer.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "support/failpoints.h"
#include "support/retry.h"

namespace iris::campaign {
namespace {

namespace fs = std::filesystem;
namespace failpoints = support::failpoints;
using fuzz::CampaignConfig;
using fuzz::CampaignRunner;
using fuzz::HarnessFault;
using guest::Workload;

/// Fresh scratch directory per test, wiped up front so reruns start
/// clean.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("iris-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Failpoints are process-global; every test that arms them must disarm
/// on every exit path, or the next test inherits its faults.
struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    const auto status = failpoints::configure(spec);
    EXPECT_TRUE(status.ok()) << status.error().message;
  }
  ~FailpointGuard() { failpoints::clear(); }
};

CampaignConfig small_config(std::size_t workers) {
  CampaignConfig config;
  config.workers = workers;
  config.hv_seed = 17;
  config.record_exits = 150;
  config.record_seed = 3;
  return config;
}

/// Sandbox knobs tuned for tests: fast retries, one retry.
CampaignConfig sandbox_config(std::size_t workers) {
  CampaignConfig config = small_config(workers);
  config.sandbox_cells = true;
  config.cell_retries = 1;
  config.retry_base_backoff_ms = 0.1;
  return config;
}

std::vector<fuzz::TestCaseSpec> small_grid(std::size_t mutants = 40) {
  return fuzz::make_table1_grid({Workload::kCpuBound}, mutants, 7);
}

// --- Failpoint rule parsing and evaluation ---

TEST(Failpoints, RejectsMalformedRules) {
  // Every malformed spec is error 91 and leaves nothing armed.
  for (const char* bad : {
           "checkpoint_append",                    // no action
           "checkpoint_append:errno=EWHATEVER",    // unknown errno
           "cell_exec:signal=HUP",                 // unsupported signal
           "cell_exec:signal=KILL:after=x",        // non-numeric filter
           "cell_exec:bogus=1",                    // unknown clause
           ":errno=EIO",                           // rule without a site
       }) {
    const auto status = failpoints::configure(bad);
    ASSERT_FALSE(status.ok()) << bad;
    EXPECT_EQ(status.error().code, 91) << bad;
  }
  EXPECT_FALSE(failpoints::active());
}

TEST(Failpoints, AfterFilterOpensAnUnboundedWindow) {
  // Regression: `after=N` with the default (unbounded) count must fire
  // on every hit past N — the window must not arithmetic-wrap shut.
  const FailpointGuard guard("probe:errno=EIO:after=2");
  EXPECT_FALSE(failpoints::evaluate("probe").has_value());
  EXPECT_FALSE(failpoints::evaluate("probe").has_value());
  for (int i = 0; i < 4; ++i) {
    const auto hit = failpoints::evaluate("probe");
    ASSERT_TRUE(hit.has_value()) << "hit " << (3 + i);
    EXPECT_EQ(hit->action, failpoints::Hit::Action::kErrno);
    EXPECT_EQ(hit->detail, EIO);
  }
}

TEST(Failpoints, CountFilterDisarmsAfterFiring) {
  const FailpointGuard guard("probe:errno=EAGAIN:count=2");
  EXPECT_TRUE(failpoints::evaluate("probe").has_value());
  EXPECT_TRUE(failpoints::evaluate("probe").has_value());
  EXPECT_FALSE(failpoints::evaluate("probe").has_value());
}

TEST(Failpoints, CellFilterMatchesOnlyThatIndex) {
  const FailpointGuard guard("cell_exec:signal=KILL:cell=5");
  EXPECT_FALSE(failpoints::evaluate("cell_exec", 4).has_value());
  const auto hit = failpoints::evaluate("cell_exec", 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->action, failpoints::Hit::Action::kSignal);
  EXPECT_EQ(hit->detail, SIGKILL);
  // Unrelated sites never match.
  EXPECT_FALSE(failpoints::evaluate("corpus_write", 5).has_value());
}

TEST(Failpoints, FsErrorCarriesTheInjectedErrno) {
  const FailpointGuard guard("checkpoint_append:errno=ENOSPC");
  const auto injected = failpoints::fs_error("checkpoint_append");
  ASSERT_TRUE(injected.has_value());
  EXPECT_EQ(injected->code, 90);
  EXPECT_EQ(injected->sys_errno, ENOSPC);
  EXPECT_NE(injected->message.find("checkpoint_append"), std::string::npos);
  EXPECT_NE(injected->message.find("ENOSPC"), std::string::npos);
}

TEST(Failpoints, ClearDisarmsEverything) {
  ASSERT_TRUE(failpoints::configure("probe:errno=EIO").ok());
  EXPECT_TRUE(failpoints::active());
  failpoints::clear();
  EXPECT_FALSE(failpoints::active());
  EXPECT_FALSE(failpoints::evaluate("probe").has_value());
}

// --- Retry policy ---

TEST(RetryPolicy, ClassifiesTransientVersusPermanentErrnos) {
  for (const int err : {EINTR, EAGAIN, ESTALE, EBUSY, ETIMEDOUT}) {
    EXPECT_TRUE(support::transient_errno(err)) << err;
  }
  for (const int err : {0, ENOSPC, EACCES, EROFS, EIO, ENOENT}) {
    EXPECT_FALSE(support::transient_errno(err)) << err;
  }
}

TEST(RetryPolicy, DelayIsExponentialJitteredAndCapped) {
  support::RetryPolicy policy;
  policy.base_delay_ms = 2.0;
  policy.multiplier = 4.0;
  policy.max_delay_ms = 250.0;
  double uncapped = policy.base_delay_ms;
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    const double delay = support::retry_delay_ms(policy, attempt);
    const double full = std::min(uncapped, policy.max_delay_ms);
    EXPECT_GE(delay, 0.5 * full) << attempt;
    EXPECT_LE(delay, full) << attempt;
    // Deterministic: same policy and attempt, same delay.
    EXPECT_EQ(delay, support::retry_delay_ms(policy, attempt));
    uncapped *= policy.multiplier;
  }
  // Distinct jitter seeds de-synchronize two shards' schedules.
  support::RetryPolicy other = policy;
  other.jitter_seed ^= 0xDEADBEEF;
  EXPECT_NE(support::retry_delay_ms(policy, 1),
            support::retry_delay_ms(other, 1));
}

TEST(RetryPolicy, RetriesTransientFailuresUntilSuccess) {
  support::RetryPolicy policy;
  policy.base_delay_ms = 0.01;
  int calls = 0;
  const auto status = support::retry_io(policy, [&]() -> Status {
    if (++calls < 3) return Error{90, "transient", EINTR};
    return {};
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicy, ReturnsPermanentFailuresImmediately) {
  support::RetryPolicy policy;
  policy.base_delay_ms = 0.01;
  int calls = 0;
  const auto status = support::retry_io(policy, [&]() -> Status {
    ++calls;
    return Error{90, "disk full", ENOSPC};
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().sys_errno, ENOSPC);
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicy, ExhaustsTheAttemptBudgetOnPersistentTransients) {
  support::RetryPolicy policy;
  policy.base_delay_ms = 0.01;
  policy.max_attempts = 4;
  int calls = 0;
  const auto status = support::retry_io(policy, [&]() -> Status {
    ++calls;
    return Error{90, "still busy", EBUSY};
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 4);
}

// --- Poison record wire format ---

TEST(PoisonRecord, RoundTripsThroughTheWireFormat) {
  PoisonRecord record;
  record.index = 17;
  record.attempts = 3;
  record.fault_kind = static_cast<std::uint8_t>(HarnessFault::Kind::kDeadline);
  record.detail = SIGKILL;
  record.message = "harness overran the cell deadline (SIGKILLed)";

  ByteWriter w;
  serialize_poison(record, w);
  ByteReader r(w.data());
  auto parsed = deserialize_poison(r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(parsed.value().index, record.index);
  EXPECT_EQ(parsed.value().attempts, record.attempts);
  EXPECT_EQ(parsed.value().fault_kind, record.fault_kind);
  EXPECT_EQ(parsed.value().detail, record.detail);
  EXPECT_EQ(parsed.value().message, record.message);
}

TEST(PoisonRecord, RejectsTruncationAndBadKinds) {
  PoisonRecord record;
  record.fault_kind = static_cast<std::uint8_t>(HarnessFault::Kind::kSignal);
  record.message = "x";
  ByteWriter w;
  serialize_poison(record, w);

  auto bytes = w.data();
  bytes.pop_back();
  ByteReader truncated(bytes);
  auto short_parse = deserialize_poison(truncated);
  ASSERT_FALSE(short_parse.ok());
  EXPECT_EQ(short_parse.error().code, 82);

  PoisonRecord bad = record;
  bad.fault_kind = 200;
  ByteWriter w2;
  serialize_poison(bad, w2);
  ByteReader r2(w2.data());
  auto bad_parse = deserialize_poison(r2);
  ASSERT_FALSE(bad_parse.ok());
  EXPECT_EQ(bad_parse.error().code, 83);
}

// --- Journal version 4 gating ---

TEST(CampaignCheckpoint, FaultContainedJournalsAreVersionGated) {
  const auto dir = scratch_dir("ckpt-v4-gate");
  const std::string v2 = (dir / "v2.ckpt").string();
  const std::string v4 = (dir / "v4.ckpt").string();

  // A fresh fault-contained journal is v4: a plain writer must refuse
  // it, and vice versa, both with the explicit version error.
  ASSERT_TRUE(CampaignCheckpoint::open(v2, 0xF00D).ok());
  const auto v2_as_v4 = CampaignCheckpoint::open(v2, 0xF00D, false, true);
  ASSERT_FALSE(v2_as_v4.ok());
  EXPECT_EQ(v2_as_v4.error().code, 81);

  ASSERT_TRUE(CampaignCheckpoint::open(v4, 0xF00D, false, true).ok());
  const auto v4_as_v2 = CampaignCheckpoint::open(v4, 0xF00D);
  ASSERT_FALSE(v4_as_v2.ok());
  EXPECT_EQ(v4_as_v2.error().code, 81);

  // Observers accept v4 whatever their own mode: the reducer must not
  // need to re-declare how a shard executed its cells.
  EXPECT_TRUE(CampaignCheckpoint::open_readonly(v4, 0xF00D).ok());
  EXPECT_TRUE(CampaignCheckpoint::open_readonly(v4, 0xF00D, true).ok());
}

TEST(CampaignCheckpoint, PoisonRecordsSurviveReopen) {
  const auto dir = scratch_dir("ckpt-poison-reopen");
  const std::string path = (dir / "campaign.ckpt").string();

  PoisonRecord record;
  record.index = 9;
  record.attempts = 2;
  record.fault_kind = static_cast<std::uint8_t>(HarnessFault::Kind::kSignal);
  record.detail = SIGKILL;
  record.message = "harness killed by signal 9";
  {
    auto ckpt = CampaignCheckpoint::open(path, 0xBEEF, false, true);
    ASSERT_TRUE(ckpt.ok());
    ASSERT_TRUE(ckpt.value().append_poison(record).ok());
  }
  auto reopened = CampaignCheckpoint::open(path, 0xBEEF, false, true);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.value().poisons().size(), 1u);
  EXPECT_EQ(reopened.value().poisons()[0].index, 9u);
  EXPECT_EQ(reopened.value().poisons()[0].message, record.message);
}

// --- Sandboxed cell execution ---

TEST(SandboxedCampaign, CleanCellsAreByteIdenticalToInProcess) {
  const auto grid = small_grid();
  const auto in_process = CampaignRunner(small_config(1)).run(grid);
  ASSERT_TRUE(in_process.complete);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    const auto sandboxed = CampaignRunner(sandbox_config(workers)).run(grid);
    ASSERT_TRUE(sandboxed.complete) << workers;
    EXPECT_EQ(sandboxed.harness_faults, 0u);
    EXPECT_EQ(canonical_result_bytes(sandboxed),
              canonical_result_bytes(in_process))
        << workers;
  }
}

TEST(SandboxedCampaign, TransientKillIsRetriedToAnIdenticalResult) {
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 2;
  const auto reference = CampaignRunner(small_config(1)).run(grid);

  // One SIGKILL, spent on the first attempt (the shared hit counter
  // survives the fork); the retry must reproduce the cell exactly.
  const FailpointGuard guard("cell_exec:signal=KILL:cell=" +
                             std::to_string(victim) + ":count=1");
  const auto recovered = CampaignRunner(sandbox_config(1)).run(grid);
  ASSERT_TRUE(recovered.complete);
  EXPECT_EQ(recovered.harness_faults, 1u);
  EXPECT_TRUE(recovered.poisoned_cells.empty());
  EXPECT_EQ(canonical_result_bytes(recovered),
            canonical_result_bytes(reference));
}

TEST(SandboxedCampaign, PersistentKillQuarantinesTheCell) {
  const auto dir = scratch_dir("sandbox-poison");
  const std::string journal = (dir / "campaign.ckpt").string();
  const std::string clean = (dir / "clean.ckpt").string();
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 2;

  CampaignConfig config = sandbox_config(1);
  config.checkpoint_path = journal;
  CampaignConfig clean_config = config;
  clean_config.checkpoint_path = clean;
  const auto reference = CampaignRunner(clean_config).run(grid);
  ASSERT_TRUE(reference.complete);

  const FailpointGuard guard("cell_exec:signal=KILL:cell=" +
                             std::to_string(victim));
  const auto result = CampaignRunner(config).run(grid);

  // Initial attempt + one retry, then quarantine; the shard survives.
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.harness_faults, 2u);
  ASSERT_EQ(result.poisoned_cells.size(), 1u);
  EXPECT_EQ(result.poisoned_cells[0].index, victim);
  EXPECT_EQ(result.poisoned_cells[0].attempts, 2u);
  EXPECT_EQ(result.poisoned_cells[0].fault.kind, HarnessFault::Kind::kSignal);
  EXPECT_EQ(result.poisoned_cells[0].fault.detail, SIGKILL);
  // Every other cell matches the fault-free run; the victim holds a
  // never-ran placeholder.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(result.results[i].ran,
              i == victim ? false : reference.results[i].ran)
        << i;
  }

  // The quarantine is journaled (v4) and honored on resume: with the
  // fault cleared the resumed run must NOT retry the poisoned cell.
  failpoints::clear();
  const auto resumed = CampaignRunner(config).run(grid);
  EXPECT_FALSE(resumed.complete);
  EXPECT_EQ(resumed.cells_resumed, grid.size() - 1);
  EXPECT_EQ(resumed.harness_faults, 0u);
  ASSERT_EQ(resumed.poisoned_cells.size(), 1u);
  EXPECT_EQ(resumed.poisoned_cells[0].index, victim);

  // The reducer reports the quarantine instead of listing the cell as
  // missing...
  auto report = reduce_journals({journal}, grid, config);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().result.complete);
  EXPECT_TRUE(report.value().missing.empty());
  ASSERT_EQ(report.value().poisoned.size(), 1u);
  EXPECT_EQ(report.value().poisoned[0].index, victim);

  // ...and a clean journal covering the cell overrides the poison: the
  // merged campaign is complete and byte-identical to a fault-free run.
  auto merged = reduce_journals({journal, clean}, grid, config);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged.value().result.complete);
  EXPECT_TRUE(merged.value().poisoned.empty());
  EXPECT_EQ(merged.value().overridden_poisons, 1u);
  EXPECT_EQ(canonical_result_bytes(merged.value().result),
            canonical_result_bytes(reference));
}

TEST(SandboxedCampaign, HungCellIsKilledAtTheDeadlineAndQuarantined) {
  const auto grid = small_grid();
  const std::size_t victim = grid.size() / 3;

  const FailpointGuard guard("cell_exec:hang:cell=" + std::to_string(victim));
  CampaignConfig config = sandbox_config(1);
  config.cell_retries = 0;  // one ~1s watchdog window, not two
  config.cell_deadline_seconds = 1.0;
  const auto result = CampaignRunner(config).run(grid);

  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.harness_faults, 1u);
  ASSERT_EQ(result.poisoned_cells.size(), 1u);
  EXPECT_EQ(result.poisoned_cells[0].index, victim);
  EXPECT_EQ(result.poisoned_cells[0].fault.kind, HarnessFault::Kind::kDeadline);
}

TEST(SandboxedCampaign, StopFlagInterruptsBeforeNewCells) {
  const auto grid = small_grid();
  std::atomic<bool> stop{true};
  CampaignConfig config = sandbox_config(1);
  config.stop = &stop;
  const auto result = CampaignRunner(config).run(grid);
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.harness_faults, 0u);
}

// --- Graceful persistence degradation ---

TEST(CampaignPersistence, JournalEnospcDegradesToInMemoryCompletion) {
  const auto dir = scratch_dir("ckpt-enospc");
  const std::string journal = (dir / "campaign.ckpt").string();
  const auto grid = small_grid();
  const auto reference = CampaignRunner(small_config(1)).run(grid);

  // First cell append succeeds, the second hits ENOSPC (permanent: no
  // retry). The campaign must finish every cell in memory, surface the
  // persistence error once, and stop hammering the journal.
  const FailpointGuard guard("checkpoint_append:errno=ENOSPC:after=1");
  CampaignConfig config = small_config(1);
  config.checkpoint_path = journal;
  const auto degraded = CampaignRunner(config).run(grid);

  EXPECT_TRUE(degraded.complete);
  EXPECT_NE(degraded.persistence_error.find("checkpoint_append"),
            std::string::npos);
  EXPECT_EQ(canonical_result_bytes(degraded),
            canonical_result_bytes(reference));

  // The journal holds exactly the one append that succeeded — and is
  // still a valid resume point once space returns.
  failpoints::clear();
  auto reopened = CampaignRunner(config).run(grid);
  EXPECT_TRUE(reopened.complete);
  EXPECT_EQ(reopened.cells_resumed, 1u);
  EXPECT_TRUE(reopened.persistence_error.empty());
  EXPECT_EQ(canonical_result_bytes(reopened),
            canonical_result_bytes(reference));
}

// --- Grid-lease loss detection ---

GridLeaseConfig lease_config(const fs::path& dir, const std::string& shard,
                             std::size_t cells, std::size_t range_size,
                             double ttl = 30.0) {
  GridLeaseConfig config;
  config.dir = dir.string();
  config.shard_id = shard;
  config.total_cells = cells;
  config.range_size = range_size;
  config.ttl_seconds = ttl;
  config.fingerprint = 0x5EED;
  return config;
}

/// heartbeat() throttles itself to ttl/4 since the last refresh; with
/// the test ttl of 2s, waiting 0.6s makes the next call actually sweep
/// (while freshly-written lease files, well under 2s old, stay live
/// for staleness purposes).
void outwait_heartbeat_throttle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
}

TEST(GridLease, HeartbeatDetectsAStolenLeaseAndAbandonsTheRange) {
  const auto dir = scratch_dir("lease-stolen");
  auto gate = GridLease::open(lease_config(dir, "a", 8, 4, 2.0));
  ASSERT_TRUE(gate.ok());
  ASSERT_TRUE(gate.value()->try_claim(0));
  ASSERT_TRUE(gate.value()->holds(0));

  // A peer reclaimed the lease after a stall: the file now names them.
  {
    std::ofstream out(gate.value()->lease_path(0), std::ios::trunc);
    out << "thief";
  }
  outwait_heartbeat_throttle();
  gate.value()->heartbeat();
  EXPECT_EQ(gate.value()->stats().lost_leases, 1u);
  EXPECT_FALSE(gate.value()->holds(0));
  // The shard no longer claims inside the lost range (the thief's
  // lease is fresh, so it is not reclaimable either).
  EXPECT_FALSE(gate.value()->try_claim(1));
}

TEST(GridLease, HeartbeatTreatsAnUnwritableLeaseAsLost) {
  const auto dir = scratch_dir("lease-unwritable");
  auto gate = GridLease::open(lease_config(dir, "a", 8, 4, 2.0));
  ASSERT_TRUE(gate.ok());
  ASSERT_TRUE(gate.value()->try_claim(0));

  const FailpointGuard guard("lease_heartbeat:errno=EACCES");
  outwait_heartbeat_throttle();
  gate.value()->heartbeat();
  EXPECT_EQ(gate.value()->stats().lost_leases, 1u);
  EXPECT_FALSE(gate.value()->holds(0));
}

TEST(GridLease, ReleaseHeldFreesLeasesButKeepsDoneMarkers) {
  const auto dir = scratch_dir("lease-release");
  auto gate = GridLease::open(lease_config(dir, "a", 8, 4));
  ASSERT_TRUE(gate.ok());
  ASSERT_TRUE(gate.value()->try_claim(0));  // range 0, kept in-flight
  ASSERT_TRUE(gate.value()->try_claim(4));  // range 1, completed below
  // Completing range 1 publishes its done marker and releases its lease
  // eagerly, so only the in-flight range is left to hand off.
  for (std::size_t i = 4; i < 8; ++i) gate.value()->completed(i);

  EXPECT_EQ(gate.value()->release_held(), 1u);
  EXPECT_FALSE(fs::exists(gate.value()->lease_path(0)));
  EXPECT_FALSE(gate.value()->holds(0));
  // Done markers are final: a peer adopting the directory skips range 1
  // and can immediately claim range 0.
  auto peer = GridLease::open(lease_config(dir, "b", 8, 4));
  ASSERT_TRUE(peer.ok());
  EXPECT_TRUE(peer.value()->try_claim(0));
  EXPECT_FALSE(peer.value()->try_claim(4));
}

}  // namespace
}  // namespace iris::campaign
