// Tests for the coverage-guided fuzzing extension (§IX "Fuzzing").
#include <gtest/gtest.h>

#include "fuzz/coverage_guided.h"

namespace iris::fuzz {
namespace {

using guest::Workload;

class CoverageGuidedTest : public ::testing::Test {
 protected:
  CoverageGuidedTest() : hv_(51, 0.0), manager_(hv_) {
    behavior_ = &manager_.record_workload(Workload::kCpuBound, 200, 3);
    // Pick a stable RDTSC target in the steady phase.
    for (std::size_t i = 50; i < behavior_->size(); ++i) {
      if ((*behavior_)[i].seed.reason == vtx::ExitReason::kRdtsc) {
        target_ = i;
        break;
      }
    }
  }

  hv::Hypervisor hv_;
  Manager manager_;
  const VmBehavior* behavior_ = nullptr;
  std::size_t target_ = 0;
};

TEST_F(CoverageGuidedTest, MutationOpNamesDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < 5; ++i) names.insert(to_string(static_cast<MutationOp>(i)));
  EXPECT_EQ(names.size(), 5u);
}

TEST_F(CoverageGuidedTest, CampaignExecutesAndGrowsCorpus) {
  CoverageGuidedFuzzer::Config config;
  config.max_executions = 400;
  CoverageGuidedFuzzer fuzzer(manager_, config);
  const auto stats = fuzzer.run(*behavior_, target_, MutationArea::kVmcs, 7);
  EXPECT_EQ(stats.executed, 400u);
  EXPECT_GT(stats.corpus_size, 1u);           // mutants were promoted
  EXPECT_GT(stats.total_loc, stats.initial_loc);
  EXPECT_EQ(stats.coverage_curve.size(), 400u);
}

TEST_F(CoverageGuidedTest, CoverageCurveIsMonotone) {
  CoverageGuidedFuzzer::Config config;
  config.max_executions = 300;
  CoverageGuidedFuzzer fuzzer(manager_, config);
  const auto stats = fuzzer.run(*behavior_, target_, MutationArea::kVmcs, 9);
  for (std::size_t i = 1; i < stats.coverage_curve.size(); ++i) {
    EXPECT_GE(stats.coverage_curve[i], stats.coverage_curve[i - 1]);
  }
}

TEST_F(CoverageGuidedTest, CorpusBounded) {
  CoverageGuidedFuzzer::Config config;
  config.max_executions = 600;
  config.max_corpus = 4;
  CoverageGuidedFuzzer fuzzer(manager_, config);
  const auto stats = fuzzer.run(*behavior_, target_, MutationArea::kVmcs, 11);
  EXPECT_LE(stats.corpus_size, 4u);
}

TEST_F(CoverageGuidedTest, SurvivesCrashesAndKeepsExecuting) {
  CoverageGuidedFuzzer::Config config;
  config.max_executions = 500;
  CoverageGuidedFuzzer fuzzer(manager_, config);
  const auto stats = fuzzer.run(*behavior_, target_, MutationArea::kVmcs, 13);
  EXPECT_EQ(stats.executed, 500u);
  EXPECT_GT(stats.vm_crashes + stats.hv_crashes, 0u);  // it does crash things
  EXPECT_FALSE(hv_.failures().host_is_down());         // and cleans up
  EXPECT_FALSE(stats.crashes.empty());
}

TEST_F(CoverageGuidedTest, GuidedBeatsBlindBitflipOnCoverage) {
  // The point of §IX's planned evolution: corpus feedback + richer
  // operators discover more than the PoC's blind single bit-flip.
  CoverageGuidedFuzzer::Config guided;
  guided.max_executions = 1500;
  CoverageGuidedFuzzer::Config blind = guided;
  blind.bitflip_only = true;
  blind.max_corpus = 1;  // no corpus evolution either

  CoverageGuidedFuzzer guided_fuzzer(manager_, guided);
  const auto g = guided_fuzzer.run(*behavior_, target_, MutationArea::kVmcs, 17);
  CoverageGuidedFuzzer blind_fuzzer(manager_, blind);
  const auto b = blind_fuzzer.run(*behavior_, target_, MutationArea::kVmcs, 17);
  EXPECT_GE(g.total_loc, b.total_loc);
}

TEST_F(CoverageGuidedTest, DeterministicUnderSeed) {
  CoverageGuidedFuzzer::Config config;
  config.max_executions = 200;
  CoverageGuidedFuzzer fuzzer(manager_, config);
  const auto a = fuzzer.run(*behavior_, target_, MutationArea::kGpr, 23);
  const auto b = fuzzer.run(*behavior_, target_, MutationArea::kGpr, 23);
  EXPECT_EQ(a.total_loc, b.total_loc);
  EXPECT_EQ(a.vm_crashes, b.vm_crashes);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
}

TEST_F(CoverageGuidedTest, InvalidTargetIndexIsNoop) {
  CoverageGuidedFuzzer fuzzer(manager_);
  const auto stats = fuzzer.run(*behavior_, behavior_->size() + 5,
                                MutationArea::kVmcs, 1);
  EXPECT_EQ(stats.executed, 0u);
}

}  // namespace
}  // namespace iris::fuzz
