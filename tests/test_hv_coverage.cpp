// Unit tests for the coverage instrumentation (the gcov substitute) and
// the failure manager.
#include <gtest/gtest.h>

#include "hv/coverage.h"
#include "hv/failure.h"

namespace iris::hv {
namespace {

TEST(CoverageMap, PerExitUniqueBlocks) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kVmx, 1, 5);  // repeated hit counts once
  cov.hit(Component::kVmx, 2, 3);
  const auto exit_cov = cov.end_exit();
  EXPECT_EQ(exit_cov.blocks.size(), 2u);
  EXPECT_EQ(exit_cov.loc, 8u);
}

TEST(CoverageMap, IrisHitsAreFiltered) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kIris, 1, 10);
  const auto filtered = cov.end_exit(/*filter_iris=*/true);
  EXPECT_EQ(filtered.blocks.size(), 1u);
  EXPECT_EQ(filtered.loc, 5u);

  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kIris, 1, 10);
  const auto raw = cov.end_exit(/*filter_iris=*/false);
  EXPECT_EQ(raw.blocks.size(), 2u);
}

TEST(CoverageMap, SameIdDifferentComponentDistinct) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 7, 2);
  cov.hit(Component::kEmulate, 7, 4);
  EXPECT_EQ(cov.end_exit().blocks.size(), 2u);
}

TEST(CoverageMap, LocWeightFixedAtFirstHit) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kIrq, 1, 6);
  cov.end_exit();
  cov.begin_exit();
  cov.hit(Component::kIrq, 1, 99);  // ignored: call sites are static
  cov.end_exit();
  EXPECT_EQ(cov.loc_of(pack_block(Component::kIrq, 1)), 6u);
}

TEST(CoverageMap, BlocksSortedInExit) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVpt, 9, 1);
  cov.hit(Component::kVmx, 3, 1);
  const auto exit_cov = cov.end_exit();
  EXPECT_TRUE(std::is_sorted(exit_cov.blocks.begin(), exit_cov.blocks.end()));
}

TEST(CoverageAccumulator, CumulativeGain) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kVmx, 2, 3);
  const auto first = cov.end_exit();

  cov.begin_exit();
  cov.hit(Component::kVmx, 2, 3);
  cov.hit(Component::kVmx, 3, 7);
  const auto second = cov.end_exit();

  CoverageAccumulator acc(cov);
  EXPECT_EQ(acc.add(first), 8u);
  EXPECT_EQ(acc.add(second), 7u);  // only block 3 is new
  EXPECT_EQ(acc.total_loc(), 15u);
  EXPECT_EQ(acc.unique_blocks(), 3u);
}

TEST(CoverageAccumulator, LocNotIn) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kVmx, 2, 3);
  const auto a_cov = cov.end_exit();
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  const auto b_cov = cov.end_exit();

  CoverageAccumulator a(cov), b(cov);
  a.add(a_cov);
  b.add(b_cov);
  EXPECT_EQ(a.loc_not_in(b), 3u);
  EXPECT_EQ(b.loc_not_in(a), 0u);
}

TEST(ExitCoverage, LocInComponent) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVlapic, 1, 4);
  cov.hit(Component::kIrq, 1, 2);
  const auto exit_cov = cov.end_exit();
  EXPECT_EQ(exit_cov.loc_in(cov, Component::kVlapic), 4u);
  EXPECT_EQ(exit_cov.loc_in(cov, Component::kIrq), 2u);
  EXPECT_EQ(exit_cov.loc_in(cov, Component::kEmulate), 0u);
}

TEST(Component, NamesMatchXenSources) {
  EXPECT_EQ(to_string(Component::kVmx), "vmx.c");
  EXPECT_EQ(to_string(Component::kEmulate), "emulate.c");
  EXPECT_EQ(to_string(Component::kVlapic), "vlapic.c");
  EXPECT_EQ(to_string(Component::kIrq), "irq.c");
  EXPECT_EQ(to_string(Component::kVpt), "vpt.c");
  EXPECT_EQ(to_string(Component::kIntr), "intr.c");
}

TEST(FailureManager, VmCrashKillsOnlyTheDomain) {
  RingLog log;
  FailureManager failures(log);
  failures.vm_crash(3, 100, "triple fault");
  EXPECT_TRUE(failures.domain_is_dead(3));
  EXPECT_FALSE(failures.domain_is_dead(2));
  EXPECT_FALSE(failures.host_is_down());
  EXPECT_TRUE(log.contains("domain_crash"));
}

TEST(FailureManager, HypervisorCrashTakesHostDown) {
  RingLog log;
  FailureManager failures(log);
  failures.hypervisor_crash(200, "unexpected VM exit reason 70");
  EXPECT_TRUE(failures.host_is_down());
  EXPECT_TRUE(log.contains("FATAL TRAP", LogLevel::kPanic));
}

TEST(FailureManager, EventsAccumulateInOrder) {
  RingLog log;
  FailureManager failures(log);
  failures.vm_crash(1, 10, "a");
  failures.hypervisor_hang(20, "b");
  ASSERT_EQ(failures.events().size(), 2u);
  EXPECT_EQ(failures.events()[0].kind, FailureKind::kVmCrash);
  EXPECT_EQ(failures.events()[1].kind, FailureKind::kHypervisorHang);
  EXPECT_EQ(failures.first_event()->reason, "a");
}

TEST(FailureManager, ResetRevivesEverything) {
  RingLog log;
  FailureManager failures(log);
  failures.vm_crash(1, 10, "x");
  failures.hypervisor_crash(20, "y");
  failures.reset();
  EXPECT_FALSE(failures.host_is_down());
  EXPECT_FALSE(failures.domain_is_dead(1));
  EXPECT_TRUE(failures.events().empty());
}

}  // namespace
}  // namespace iris::hv
