// Unit tests for the coverage instrumentation (the gcov substitute) and
// the failure manager.
#include <gtest/gtest.h>

#include <unordered_set>

#include "hv/coverage.h"
#include "hv/failure.h"
#include "iris/manager.h"

namespace iris::hv {
namespace {

TEST(CoverageMap, PerExitUniqueBlocks) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kVmx, 1, 5);  // repeated hit counts once
  cov.hit(Component::kVmx, 2, 3);
  const auto exit_cov = cov.end_exit();
  EXPECT_EQ(exit_cov.blocks.size(), 2u);
  EXPECT_EQ(exit_cov.loc, 8u);
}

TEST(CoverageMap, IrisHitsAreFiltered) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kIris, 1, 10);
  const auto filtered = cov.end_exit(/*filter_iris=*/true);
  EXPECT_EQ(filtered.blocks.size(), 1u);
  EXPECT_EQ(filtered.loc, 5u);

  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kIris, 1, 10);
  const auto raw = cov.end_exit(/*filter_iris=*/false);
  EXPECT_EQ(raw.blocks.size(), 2u);
}

TEST(CoverageMap, SameIdDifferentComponentDistinct) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 7, 2);
  cov.hit(Component::kEmulate, 7, 4);
  EXPECT_EQ(cov.end_exit().blocks.size(), 2u);
}

TEST(CoverageMap, LocWeightFixedAtFirstHit) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kIrq, 1, 6);
  cov.end_exit();
  cov.begin_exit();
  cov.hit(Component::kIrq, 1, 99);  // ignored: call sites are static
  cov.end_exit();
  EXPECT_EQ(cov.loc_of(pack_block(Component::kIrq, 1)), 6u);
}

TEST(CoverageMap, BlocksSortedInExit) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVpt, 9, 1);
  cov.hit(Component::kVmx, 3, 1);
  const auto exit_cov = cov.end_exit();
  EXPECT_TRUE(std::is_sorted(exit_cov.blocks.begin(), exit_cov.blocks.end()));
}

TEST(CoverageAccumulator, CumulativeGain) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kVmx, 2, 3);
  const auto first = cov.end_exit();

  cov.begin_exit();
  cov.hit(Component::kVmx, 2, 3);
  cov.hit(Component::kVmx, 3, 7);
  const auto second = cov.end_exit();

  CoverageAccumulator acc(cov);
  EXPECT_EQ(acc.add(first), 8u);
  EXPECT_EQ(acc.add(second), 7u);  // only block 3 is new
  EXPECT_EQ(acc.total_loc(), 15u);
  EXPECT_EQ(acc.unique_blocks(), 3u);
}

TEST(CoverageAccumulator, LocNotIn) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  cov.hit(Component::kVmx, 2, 3);
  const auto a_cov = cov.end_exit();
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 5);
  const auto b_cov = cov.end_exit();

  CoverageAccumulator a(cov), b(cov);
  a.add(a_cov);
  b.add(b_cov);
  EXPECT_EQ(a.loc_not_in(b), 3u);
  EXPECT_EQ(b.loc_not_in(a), 0u);
}

TEST(CoverageMap, RegisteredBlocksListsFirstHitOrder) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVpt, 9, 4);
  cov.hit(Component::kVmx, 1, 2);
  cov.hit(Component::kVpt, 9, 4);  // repeat: no new registration
  cov.end_exit();
  ASSERT_EQ(cov.registered_blocks().size(), 2u);
  EXPECT_EQ(cov.registered_blocks()[0], pack_block(Component::kVpt, 9));
  EXPECT_EQ(cov.registered_blocks()[1], pack_block(Component::kVmx, 1));
  EXPECT_EQ(cov.loc_of(cov.registered_blocks()[0]), 4);
}

TEST(CoverageMap, EndExitIntoReusesTheCallerBuffer) {
  CoverageMap cov;
  ExitCoverage out;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 2);
  cov.hit(Component::kIntr, 2, 3);
  cov.end_exit_into(out);
  EXPECT_EQ(out.blocks.size(), 2u);
  EXPECT_EQ(out.loc, 5u);

  // Refill with a different exit: previous content must be replaced,
  // not appended to.
  cov.begin_exit();
  cov.hit(Component::kVpt, 7, 4);
  cov.end_exit_into(out);
  ASSERT_EQ(out.blocks.size(), 1u);
  EXPECT_EQ(out.blocks[0], pack_block(Component::kVpt, 7));
  EXPECT_EQ(out.loc, 4u);
}

TEST(CoverageMap, ResetForgetsEverything) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVmx, 1, 2);
  cov.end_exit();
  cov.reset();
  EXPECT_TRUE(cov.registered_blocks().empty());
  EXPECT_EQ(cov.loc_of(pack_block(Component::kVmx, 1)), 0);
  cov.begin_exit();
  EXPECT_TRUE(cov.end_exit().blocks.empty());
}

// Reference implementation of the accumulator contract with hash-set
// internals (the pre-bitset design); the production bitset version must
// report identical numbers on every input.
struct ReferenceAccumulator {
  explicit ReferenceAccumulator(const CoverageMap& m) : map(&m) {}

  std::uint32_t add(const ExitCoverage& exit_cov) {
    std::uint32_t gained = 0;
    for (BlockKey key : exit_cov.blocks) {
      if (seen.insert(key).second) gained += map->loc_of(key);
    }
    total += gained;
    return gained;
  }

  [[nodiscard]] std::uint32_t loc_not_in(const ReferenceAccumulator& other) const {
    std::uint32_t sum = 0;
    for (BlockKey key : seen) {
      if (!other.seen.contains(key)) sum += map->loc_of(key);
    }
    return sum;
  }

  const CoverageMap* map;
  std::unordered_set<BlockKey> seen;
  std::uint32_t total = 0;
};

TEST(CoverageAccumulator, BitsetMatchesHashSetReferenceOnRecordedBehaviors) {
  for (const auto workload :
       {guest::Workload::kOsBoot, guest::Workload::kCpuBound, guest::Workload::kIdle}) {
    Hypervisor hv(7, 0.02);
    Manager manager(hv);
    const VmBehavior& behavior = manager.record_workload(workload, 300, 11);
    ASSERT_FALSE(behavior.empty());

    // Split the trace across two accumulators (even/odd exits) so the
    // loc_not_in comparison sees genuinely different sides.
    CoverageAccumulator even(hv.coverage()), odd(hv.coverage());
    ReferenceAccumulator ref_even(hv.coverage()), ref_odd(hv.coverage());
    for (std::size_t i = 0; i < behavior.size(); ++i) {
      const ExitCoverage& cov = behavior[i].metrics.coverage;
      auto& acc = (i % 2 == 0) ? even : odd;
      auto& ref = (i % 2 == 0) ? ref_even : ref_odd;
      // Gain must agree add-by-add, not only in the final total.
      ASSERT_EQ(acc.add(cov), ref.add(cov));
    }
    EXPECT_EQ(even.total_loc(), ref_even.total);
    EXPECT_EQ(odd.total_loc(), ref_odd.total);
    EXPECT_EQ(even.unique_blocks(), ref_even.seen.size());
    EXPECT_EQ(odd.unique_blocks(), ref_odd.seen.size());
    EXPECT_EQ(even.loc_not_in(odd), ref_even.loc_not_in(ref_odd));
    EXPECT_EQ(odd.loc_not_in(even), ref_odd.loc_not_in(ref_even));
    for (BlockKey key : ref_even.seen) {
      EXPECT_TRUE(even.contains(key));
    }
  }
}

TEST(ExitCoverage, LocInComponent) {
  CoverageMap cov;
  cov.begin_exit();
  cov.hit(Component::kVlapic, 1, 4);
  cov.hit(Component::kIrq, 1, 2);
  const auto exit_cov = cov.end_exit();
  EXPECT_EQ(exit_cov.loc_in(cov, Component::kVlapic), 4u);
  EXPECT_EQ(exit_cov.loc_in(cov, Component::kIrq), 2u);
  EXPECT_EQ(exit_cov.loc_in(cov, Component::kEmulate), 0u);
}

TEST(Component, NamesMatchXenSources) {
  EXPECT_EQ(to_string(Component::kVmx), "vmx.c");
  EXPECT_EQ(to_string(Component::kEmulate), "emulate.c");
  EXPECT_EQ(to_string(Component::kVlapic), "vlapic.c");
  EXPECT_EQ(to_string(Component::kIrq), "irq.c");
  EXPECT_EQ(to_string(Component::kVpt), "vpt.c");
  EXPECT_EQ(to_string(Component::kIntr), "intr.c");
}

TEST(FailureManager, VmCrashKillsOnlyTheDomain) {
  RingLog log;
  FailureManager failures(log);
  failures.vm_crash(3, 100, "triple fault");
  EXPECT_TRUE(failures.domain_is_dead(3));
  EXPECT_FALSE(failures.domain_is_dead(2));
  EXPECT_FALSE(failures.host_is_down());
  EXPECT_TRUE(log.contains("domain_crash"));
}

TEST(FailureManager, HypervisorCrashTakesHostDown) {
  RingLog log;
  FailureManager failures(log);
  failures.hypervisor_crash(200, "unexpected VM exit reason 70");
  EXPECT_TRUE(failures.host_is_down());
  EXPECT_TRUE(log.contains("FATAL TRAP", LogLevel::kPanic));
}

TEST(FailureManager, EventsAccumulateInOrder) {
  RingLog log;
  FailureManager failures(log);
  failures.vm_crash(1, 10, "a");
  failures.hypervisor_hang(20, "b");
  ASSERT_EQ(failures.events().size(), 2u);
  EXPECT_EQ(failures.events()[0].kind, FailureKind::kVmCrash);
  EXPECT_EQ(failures.events()[1].kind, FailureKind::kHypervisorHang);
  EXPECT_EQ(failures.first_event()->reason, "a");
}

TEST(FailureManager, ResetRevivesEverything) {
  RingLog log;
  FailureManager failures(log);
  failures.vm_crash(1, 10, "x");
  failures.hypervisor_crash(20, "y");
  failures.reset();
  EXPECT_FALSE(failures.host_is_down());
  EXPECT_FALSE(failures.domain_is_dead(1));
  EXPECT_TRUE(failures.events().empty());
}

}  // namespace
}  // namespace iris::hv
